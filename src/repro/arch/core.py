"""The core execution model.

Each core runs one process at a time and is modelled as an in-order
engine whose progress is gated by memory stalls:

* every instruction costs the workload's ``base_cpi`` cycles of pipeline
  time (this folds in L1-hit latency, which real pipelines hide);
* every access that misses L1 additionally stalls the core for the extra
  latency of the level that served it, divided by the workload's
  ``overlap`` factor (memory-level parallelism: streaming codes overlap
  several outstanding misses, pointer chasers cannot).

The loop advances one *memory access* at a time — between accesses the
workload retires ``1 / mem_ratio`` instructions — which is what makes a
whole-benchmark simulation tractable in Python while still reproducing
the paper's Figure 3 phenomenon: periods with many LLC misses are
periods with few instructions retired.
"""

from __future__ import annotations

from functools import reduce
from operator import add as _fadd

import numpy as np

from ..config import MachineConfig
from .cache import fast_lane_enabled
from .hierarchy import CacheHierarchy
from .memory import MainMemory

#: Upper bound on one address batch drawn from a pattern.
_MAX_BATCH = 4096

#: Smallest guaranteed-safe batch worth routing through the bulk
#: kernel; below this the scalar tail loop finishes the budget.
_KERNEL_MIN_BATCH = 8

#: Smallest per-budget access estimate for which the vector kernel's
#: fixed per-batch dispatch cost amortises.  Miss-bound workloads that
#: execute only a couple hundred accesses per cycle budget run faster
#: through the scalar bulk kernel, so the vector path stands down; the
#: estimate is refreshed from every budget-limited run (whichever tier
#: executed it), so a later phase change re-engages the vector path.
_VECTOR_MIN_EST = 384

#: The stand-down floor for the tier-5 build (``REPRO_VECTOR_FILLS``
#: doubles as its construction-time marker): with batches served as
#: array slices by the pattern layer and the owner bitmask column
#: replacing the per-line dict walk, the commit's fixed dispatch cost
#: amortises far sooner — the measured engage break-even on the
#: pointer-chase shape sits between ~100 and ~150 accesses, so the
#: ~200-access batches of a standard 40 K budget now profit from the
#: vector tier.  Below the floor the scalar bulk kernel — still over
#: the array-backed ownership store — remains the fastest path.
_VECTOR_MIN_EST_BATCHED = 128


class Core:
    """One core: executes a process against the shared hierarchy."""

    def __init__(
        self,
        core_id: int,
        machine: MachineConfig,
        hierarchy: CacheHierarchy,
        memory: MainMemory,
    ):
        self.core_id = core_id
        self.machine = machine
        self.hierarchy = hierarchy
        self.memory = memory
        #: cumulative cycles this core spent executing (not idling)
        self.cycles_executed = 0.0
        #: cumulative instructions retired on this core
        self.instructions_retired = 0.0
        #: cumulative memory accesses issued
        self.accesses_issued = 0
        lat = machine.latencies
        # Extra stall beyond an L1 hit, indexed by serving level (1..3);
        # level 4 is priced dynamically by the memory channel.
        self._extra_stall = (0.0, 0.0, float(lat.l2 - lat.l1),
                             float(lat.l3 - lat.l1))
        self._l1_latency = float(lat.l1)
        self._fast_lane = fast_lane_enabled()
        # Cycles the in-flight access of the previous run() call owes
        # beyond its budget; deducted from the next budget so cycle
        # accounting never exceeds the sum of granted budgets.
        self._stall_debt = 0.0
        # Running estimate of how many accesses one cycle budget
        # executes, sizing the vector kernel's batches (see run()).
        self._vector_est = 512
        # Per-core stand-down floor: lower when the hierarchy's
        # batched private fill is available (tier-5 commit).
        self._vector_min_est = (
            _VECTOR_MIN_EST_BATCHED
            if hierarchy._vector_fills else _VECTOR_MIN_EST
        )

    def run(self, process: "object", cycle_budget: float,
            start_cycle: float = 0.0) -> float:
        """Execute ``process`` for up to ``cycle_budget`` cycles.

        ``process`` is a :class:`repro.sim.process.SimProcess` (duck
        typed to avoid a package cycle): it exposes ``finished``,
        ``current_phase()`` and ``account(accesses)``.

        Returns the cycles actually consumed — less than the budget only
        if the process ran to completion inside it.
        """
        if cycle_budget <= 0.0:
            return 0.0
        used = self._stall_debt
        if used >= cycle_budget:
            # Still stalled on the previous call's in-flight access:
            # the whole budget drains into the outstanding debt.
            self._stall_debt = used - cycle_budget
            self.cycles_executed += cycle_budget
            return cycle_budget
        self._stall_debt = 0.0
        total_accesses = 0
        total_instructions = 0.0
        hierarchy = self.hierarchy
        hier_access = hierarchy.access
        access_many = hierarchy.access_many
        memory = self.memory
        mem_access = memory.access
        extra = self._extra_stall
        l1_lat = self._l1_latency
        cid = self.core_id
        # Fast lane: inline the L1 MRU-hit check when it is provably
        # equivalent to the generic walk; hit counts are accumulated
        # locally and flushed per chunk.  Flat LRU caches expose the
        # MRU tag directly; FIFO/Random keep per-set lists.
        l1 = hierarchy.l1[cid]
        flat = l1._flat
        if flat:
            l1_mru = l1._mru
        else:
            l1_sets = l1._sets
        l1_mask = l1._set_mask
        l1_stats = l1.stats
        counters = hierarchy.counters[cid]
        fast = self._fast_lane and hierarchy.l1_mru_fastpath_ok(cid)

        while used < cycle_budget and not process.finished:
            phase = process.current_phase()
            hierarchy.set_store_ratio(cid, phase.store_ratio)
            take_addresses = phase.take_addresses
            push_back = phase.push_back
            ipa = phase.instructions_per_access
            cpa = phase.compute_cycles_per_access
            inv_overlap = 1.0 / phase.overlap
            chunk = process.accesses_left_in_phase()
            done = 0
            mru_hits = 0
            if flat and hierarchy.bulk_kernel_ok(cid):
                # Bulk kernel: whole batches through access_many, with
                # cycle accounting from the returned serving levels.
                # The per-level costs are the exact expressions the
                # scalar loop evaluates per access (the memory channel
                # prices every access in a period identically), so the
                # float accumulation into `used` is bit-identical.
                # Batches are sized so even all-worst-case costs cannot
                # cross the budget: the scalar loop would consume every
                # address too, and no push-back can be needed.
                c2 = cpa + extra[2] * inv_overlap
                c3 = cpa + extra[3] * inv_overlap
                mem_unit = memory.latency + memory.current_queue_delay
                c4 = cpa + (mem_unit - l1_lat) * inv_overlap
                costs = (0.0, cpa, c2, c3, c4)
                worst = max(cpa, c2, c3, c4)
                vector = (hierarchy.vector_kernel_ok(cid)
                          and self._vector_est >= self._vector_min_est)
                if vector:
                    take_array = phase.take_addresses_array
                    vec_classify = hierarchy.vector_classify
                    vec_commit = hierarchy.vector_commit
                    costs_np = np.array(costs, dtype=np.float64)
                    # The running total seeds slot 0 so the accumulate
                    # replays the scalar loop's exact left-to-right
                    # IEEE-754 add sequence.
                    fold = np.empty(_MAX_BATCH + 1, dtype=np.float64)
                while done < chunk:
                    if vector:
                        # The vector kernel prices a batch before
                        # touching any state, so it needs no worst-case
                        # sizing: take a large batch, find the exact
                        # budget cutoff, commit the executable prefix
                        # and push the rest back as a zero-copy view.
                        if used >= cycle_budget:
                            break
                        batch = chunk - done
                        if batch > _MAX_BATCH:
                            batch = _MAX_BATCH
                        # Adapt to the observed per-budget throughput
                        # so miss-heavy phases don't classify ~4096
                        # addresses to execute a few hundred; the 25%
                        # overdraw absorbs estimate drift.
                        cap = self._vector_est + (self._vector_est >> 2)
                        if cap < 64:
                            cap = 64
                        if batch > cap:
                            batch = cap
                        if batch < _KERNEL_MIN_BATCH:
                            break
                        addr_arr = take_array(batch)
                        plan = vec_classify(cid, addr_arr)
                        if plan is None:
                            # Not provably uniform: return the batch
                            # untouched and finish this chunk on the
                            # worst-case-sized scalar kernel.
                            phase.push_back_array(addr_arr, 0)
                            vector = False
                            continue
                        fold[0] = used
                        np.take(costs_np, plan.levels,
                                out=fold[1:batch + 1])
                        np.add.accumulate(fold[:batch + 1],
                                          out=fold[:batch + 1])
                        # Access i executes iff the total before it is
                        # under budget — the scalar loops' exact rule.
                        n_exec = int(np.searchsorted(
                            fold[:batch], cycle_budget, side="left"
                        ))
                        if not vec_commit(cid, plan, n_exec):
                            # Structural bail (overloaded L3 set, an
                            # invalidated hit prediction, an own-core
                            # back-invalidation): nothing was mutated
                            # and the pricing may be wrong, so hand
                            # the whole batch to the scalar ladder.
                            phase.push_back_array(addr_arr, 0)
                            vector = False
                            continue
                        if plan.hit is None:
                            # All-miss plan: every executed collapsed
                            # access went to memory.
                            n_mem = int(np.searchsorted(
                                plan.keep_raw, n_exec, side="left"
                            ))
                        else:
                            n_mem = int(np.count_nonzero(
                                plan.levels[:n_exec] == 4
                            ))
                        used = float(fold[n_exec])
                        if n_mem:
                            memory.access_bulk(n_mem)
                        done += n_exec
                        if n_exec < batch:
                            # Budget truncation: push the unexecuted
                            # suffix back untouched (the end-of-run
                            # bookkeeping refreshes the batch-size
                            # estimate from the whole run).
                            phase.push_back_array(addr_arr, n_exec)
                            break
                        continue
                    safe = int((cycle_budget - used) / worst)
                    if safe < _KERNEL_MIN_BATCH:
                        break
                    batch = chunk - done
                    if batch > safe:
                        batch = safe
                    if batch > _MAX_BATCH:
                        batch = _MAX_BATCH
                    levels = access_many(cid, take_addresses(batch))
                    # Same left-to-right IEEE-754 add sequence as the
                    # scalar loop, folded at C level.
                    used = reduce(_fadd,
                                  map(costs.__getitem__, levels),
                                  used)
                    n_mem = levels.count(4)
                    if n_mem:
                        memory.access_bulk(n_mem)
                    done += batch
            while done < chunk and used < cycle_budget:
                # An L1 hit (cpa cycles) is the cheapest access, so at
                # most this many accesses can start inside the budget.
                batch = int((cycle_budget - used) / cpa) + 1
                rest = chunk - done
                if batch > rest:
                    batch = rest
                if batch > _MAX_BATCH:
                    batch = _MAX_BATCH
                addrs = take_addresses(batch)
                consumed = batch
                if fast and flat:
                    for i, addr in enumerate(addrs):
                        if used >= cycle_budget:
                            push_back(addrs, i)
                            consumed = i
                            break
                        if l1_mru[addr & l1_mask] == addr:
                            mru_hits += 1
                            used += cpa
                            continue
                        level = hier_access(cid, addr)
                        if level == 1:
                            used += cpa
                        elif level == 4:
                            stall = mem_access(start_cycle + used) - l1_lat
                            used += cpa + stall * inv_overlap
                        else:
                            used += cpa + extra[level] * inv_overlap
                elif fast:
                    for i, addr in enumerate(addrs):
                        if used >= cycle_budget:
                            push_back(addrs, i)
                            consumed = i
                            break
                        contents = l1_sets[addr & l1_mask]
                        if contents and contents[-1] == addr:
                            mru_hits += 1
                            used += cpa
                            continue
                        level = hier_access(cid, addr)
                        if level == 1:
                            used += cpa
                        elif level == 4:
                            stall = mem_access(start_cycle + used) - l1_lat
                            used += cpa + stall * inv_overlap
                        else:
                            used += cpa + extra[level] * inv_overlap
                else:
                    for i, addr in enumerate(addrs):
                        if used >= cycle_budget:
                            push_back(addrs, i)
                            consumed = i
                            break
                        level = hier_access(cid, addr)
                        if level == 1:
                            used += cpa
                        elif level == 4:
                            stall = mem_access(start_cycle + used) - l1_lat
                            used += cpa + stall * inv_overlap
                        else:
                            used += cpa + extra[level] * inv_overlap
                done += consumed
            if mru_hits:
                counters.l1_hits += mru_hits
                l1_stats.hits += mru_hits
            total_accesses += done
            total_instructions += done * ipa
            process.account(done)

        if used >= cycle_budget and total_accesses:
            # Budget-limited run: what it executed is what one budget
            # buys — the estimate the vector kernel's batch sizing (and
            # its stand-down threshold) needs, whichever tier ran.
            self._vector_est = total_accesses
        if used > cycle_budget:
            # The final access overshot; carry the excess into the next
            # call so charged cycles never exceed granted budgets.
            self._stall_debt = used - cycle_budget
            used = cycle_budget
        self.cycles_executed += used
        self.accesses_issued += total_accesses
        self.instructions_retired += total_instructions
        return used

    def idle(self, cycles: float) -> None:
        """Account an idle stretch (no counters advance; hook for tests)."""

    def charge_overhead(self, cycles: float) -> None:
        """Charge runtime-overhead cycles to this core.

        Used by the perfmon layer to model the (small) cost of probing
        the PMU each period: the cycles are consumed but retire no
        instructions.
        """
        if cycles < 0:
            raise ValueError(f"overhead cycles must be >= 0, got {cycles}")
        self.cycles_executed += cycles

    def __repr__(self) -> str:
        return (
            f"Core({self.core_id}, cycles={self.cycles_executed:.0f}, "
            f"instructions={self.instructions_retired:.0f})"
        )
