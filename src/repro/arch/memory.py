"""Main-memory model: fixed latency plus rate-based bandwidth queueing.

The paper notes (§2) that contention further down the memory subsystem —
bus, memory controller, DRAM — "manifests as traffic off-chip and thus
shows up as misses in the last level cache".  We therefore model main
memory as the service point for L3 misses: every off-chip access pays a
base DRAM latency plus a queueing delay that grows with the *aggregate*
miss rate of all cores.  Two co-located streaming applications thus slow
each other both through L3 evictions *and* through memory-bandwidth
pressure, as on real hardware.

Because the engine interleaves cores at slice granularity (not per
access), per-request timestamps are only approximately ordered, so a
busy-until queue would charge phantom delays to whichever core happens
to be simulated second.  Instead the channel keeps an M/D/1-style
estimate: the engine reports the end of each probe period, the channel
computes last period's utilisation ``rho = arrivals * service /
period_cycles``, and every access in the next period pays the classic
mean waiting time ``service * rho / (2 * (1 - rho))``.  The estimate is
deterministic, identical for all cores, and one period behind — a fine
approximation at 40 K-cycle periods.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError

#: Cap on modelled channel utilisation, bounding the queueing delay.
MAX_RHO = 0.95


class MainMemory:
    """Latency + bandwidth model for the off-chip memory path."""

    def __init__(
        self,
        latency: int = 200,
        service_cycles: float | None = 36.0,
        smoothing: float = 0.5,
    ):
        """Create a memory channel.

        ``service_cycles`` is the channel occupancy of one line transfer
        (the reciprocal of *sustained* bandwidth — lower than the DDR3
        peak because of bank conflicts and read/write turnarounds; the
        default was calibrated so one streaming core loads the channel
        to ~50% and a co-located streaming pair slows each other by
        ~20-40%, the lbm-with-lbm regime of the paper's Figure 1).
        Pass ``None`` to disable bandwidth modelling (infinite
        bandwidth).  ``smoothing`` is the EWMA weight of the newest
        period's utilisation — the damping keeps the one-period-lagged
        estimate from oscillating under heavy load.
        """
        if not 0.0 < smoothing <= 1.0:
            raise ConfigError(f"smoothing must be in (0, 1]: {smoothing}")
        self.smoothing = smoothing
        if latency <= 0:
            raise ConfigError(f"memory latency must be positive: {latency}")
        if service_cycles is not None and service_cycles <= 0:
            raise ConfigError(
                f"service_cycles must be positive or None: {service_cycles}"
            )
        self.latency = latency
        self.service_cycles = service_cycles or 0.0
        self.accesses = 0
        self.total_queue_cycles = 0.0
        self._arrivals_this_period = 0
        self._queue_delay = 0.0
        self._rho = 0.0
        #: per-period utilisation history (for tests and reports)
        self.rho_history: list[float] = []

    def access(self, now: float) -> float:
        """Cost in cycles of an off-chip access issued at cycle ``now``.

        ``now`` is accepted for interface stability (and future
        refinements) but the rate-based model prices every access in a
        period identically.
        """
        self.accesses += 1
        self._arrivals_this_period += 1
        self.total_queue_cycles += self._queue_delay
        return self.latency + self._queue_delay

    def access_bulk(self, count: int) -> None:
        """Record ``count`` off-chip accesses issued by one batch.

        Bookkeeping-identical to ``count`` sequential :meth:`access`
        calls (the rate-based model prices every access in a period the
        same, so order inside a batch cannot matter): the queue-cycle
        total is accumulated with the same per-access float adds so a
        batched run stays bit-identical to a scalar one.
        """
        self.accesses += count
        self._arrivals_this_period += count
        delay = self._queue_delay
        if delay:
            if count >= 64:
                # np.add.accumulate is a sequential left-to-right fold,
                # so seeding slot 0 with the running total reproduces
                # the loop's add sequence bit for bit at C speed.
                fold = np.full(count + 1, delay, dtype=np.float64)
                fold[0] = self.total_queue_cycles
                self.total_queue_cycles = float(
                    np.add.accumulate(fold)[-1]
                )
            else:
                total = self.total_queue_cycles
                for _ in range(count):
                    total += delay
                self.total_queue_cycles = total

    def end_period(self, period_cycles: int) -> None:
        """Recompute the queueing delay from last period's arrivals."""
        if not self.service_cycles:
            self._arrivals_this_period = 0
            return
        raw = self._arrivals_this_period * self.service_cycles / period_cycles
        raw = min(raw, MAX_RHO)
        self._rho += self.smoothing * (raw - self._rho)
        self.rho_history.append(self._rho)
        # M/D/1 mean waiting time.
        self._queue_delay = (
            self.service_cycles * self._rho / (2.0 * (1.0 - self._rho))
        )
        self._arrivals_this_period = 0

    @property
    def current_queue_delay(self) -> float:
        """Queueing delay charged to accesses this period."""
        return self._queue_delay

    @property
    def mean_queue_cycles(self) -> float:
        """Average queueing delay per access so far."""
        return (
            self.total_queue_cycles / self.accesses if self.accesses else 0.0
        )

    def reset(self) -> None:
        """Clear all rate estimates and statistics."""
        self.accesses = 0
        self.total_queue_cycles = 0.0
        self._arrivals_this_period = 0
        self._queue_delay = 0.0
        self._rho = 0.0
        self.rho_history = []

    def __repr__(self) -> str:
        return (
            f"MainMemory(latency={self.latency}, "
            f"service={self.service_cycles}, "
            f"mean_queue={self.mean_queue_cycles:.2f})"
        )
