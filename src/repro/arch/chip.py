"""The assembled multicore chip.

:class:`MulticoreChip` wires cores, the shared cache hierarchy, the
memory channel, and one PMU per core into the object the simulation
engine drives.  It corresponds to the "Intel Core i7 920 Quad Core"
box of the paper's experimental setup (§6.1), at the configured scale.
"""

from __future__ import annotations

from ..config import MachineConfig
from ..errors import ConfigError
from .core import Core
from .hierarchy import CacheHierarchy
from .memory import MainMemory
from .pmu import CorePMU


class MulticoreChip:
    """Cores + private/shared caches + memory + per-core PMUs."""

    def __init__(
        self,
        machine: MachineConfig | None = None,
        seed: int = 0,
        memory: MainMemory | None = None,
    ):
        self.machine = machine or MachineConfig.scaled_nehalem()
        self.seed = seed
        self.memory = memory or MainMemory(self.machine.latencies.memory)
        self.hierarchy = CacheHierarchy(self.machine, seed=seed)
        self.hierarchy.memory = self.memory
        self.cores = [
            Core(c, self.machine, self.hierarchy, self.memory)
            for c in range(self.machine.num_cores)
        ]
        self.pmus = [
            CorePMU(self.cores[c], self.hierarchy.counters[c])
            for c in range(self.machine.num_cores)
        ]

    @property
    def num_cores(self) -> int:
        """Number of cores on the chip."""
        return self.machine.num_cores

    def core(self, core_id: int) -> Core:
        """The core object for ``core_id`` (validated)."""
        if not 0 <= core_id < self.num_cores:
            raise ConfigError(f"no such core: {core_id}")
        return self.cores[core_id]

    def pmu(self, core_id: int) -> CorePMU:
        """The PMU bank of ``core_id`` (validated)."""
        if not 0 <= core_id < self.num_cores:
            raise ConfigError(f"no such core: {core_id}")
        return self.pmus[core_id]

    def reset(self) -> None:
        """Restore the chip to power-on state (cold caches, zero counters)."""
        self.memory.reset()
        self.hierarchy = CacheHierarchy(self.machine, seed=self.seed)
        self.hierarchy.memory = self.memory
        self.cores = [
            Core(c, self.machine, self.hierarchy, self.memory)
            for c in range(self.machine.num_cores)
        ]
        self.pmus = [
            CorePMU(self.cores[c], self.hierarchy.counters[c])
            for c in range(self.machine.num_cores)
        ]

    def __repr__(self) -> str:
        return (
            f"MulticoreChip({self.machine.name!r}, cores={self.num_cores}, "
            f"l3_lines={self.machine.l3.capacity_lines})"
        )
