"""Cache replacement policies.

A policy manages the *recency state* of one cache set.  The cache stores
set contents as a plain list of line addresses; the policy decides how
that list is reordered on hits and which element is the victim on an
eviction.  Keeping the contents in a list (MRU conventions documented
per policy) makes the hot path a handful of list operations, which for
associativities up to 16 beats fancier structures in CPython.

``lru`` is what the reproduction uses by default (Nehalem's L3 is
approximately LRU and the paper's contention story — occupancy follows
insertion rate — is an LRU phenomenon), but FIFO, random, and tree
pseudo-LRU are provided for ablations.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from ..errors import CacheConfigError


class ReplacementPolicy(ABC):
    """Replacement strategy for a single set-associative cache.

    One policy instance serves every set of one cache; any per-set state
    beyond the contents list itself is keyed by ``set_index``.
    """

    #: Whether a cache may replace this policy's list bookkeeping with
    #: the flat-array LRU storage (and route batches through the bulk
    #: kernel's inlined walks).  Only exact tail-MRU/head-victim LRU
    #: semantics qualify: the flat representation hard-codes
    #: move-to-tail on hit, append on fill, and head eviction.  A
    #: subclass that changes any of those must leave this ``False``.
    flat_lru_compatible = False

    @abstractmethod
    def on_hit(self, contents: list[int], way: int, set_index: int) -> None:
        """Update recency state after a hit on ``contents[way]``."""

    @abstractmethod
    def on_fill(self, contents: list[int], addr: int, set_index: int) -> None:
        """Insert ``addr`` into a set that still has spare ways."""

    @abstractmethod
    def victim_index(self, contents: list[int], set_index: int) -> int:
        """Choose the way to evict from a full set."""

    def on_invalidate(
        self, contents: list[int], way: int, set_index: int
    ) -> None:
        """Remove ``contents[way]``; default is a plain list removal."""
        del contents[way]


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used. Convention: MRU at the list tail."""

    flat_lru_compatible = True

    def on_hit(self, contents: list[int], way: int, set_index: int) -> None:
        contents.append(contents.pop(way))

    def on_fill(self, contents: list[int], addr: int, set_index: int) -> None:
        contents.append(addr)

    def victim_index(self, contents: list[int], set_index: int) -> int:
        return 0


class FIFOPolicy(ReplacementPolicy):
    """First-in first-out: hits do not refresh a line's lifetime."""

    def on_hit(self, contents: list[int], way: int, set_index: int) -> None:
        pass

    def on_fill(self, contents: list[int], addr: int, set_index: int) -> None:
        contents.append(addr)

    def victim_index(self, contents: list[int], set_index: int) -> int:
        return 0


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim selection (deterministic under a seed)."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def on_hit(self, contents: list[int], way: int, set_index: int) -> None:
        pass

    def on_fill(self, contents: list[int], addr: int, set_index: int) -> None:
        contents.append(addr)

    def victim_index(self, contents: list[int], set_index: int) -> int:
        return self._rng.randrange(len(contents))


class TreePLRUPolicy(ReplacementPolicy):
    """Binary-tree pseudo-LRU, the common hardware LRU approximation.

    Requires a power-of-two associativity.  Per set we keep
    ``associativity - 1`` tree bits; each access flips the bits on the
    root-to-leaf path away from the accessed way, and the victim is
    found by following the bits from the root.

    The tree indexes *ways by position*, so unlike :class:`LRUPolicy`
    the contents list is kept in stable positional order (no
    move-to-back).  Invalidations compact the list, which perturbs the
    way<->leaf mapping slightly; as PLRU is itself an approximation this
    is an accepted (and tested) behaviour.
    """

    def __init__(self, associativity: int):
        if associativity < 2 or associativity & (associativity - 1):
            raise CacheConfigError(
                "tree PLRU needs a power-of-two associativity >= 2, "
                f"got {associativity}"
            )
        self._assoc = associativity
        self._levels = associativity.bit_length() - 1
        self._bits: dict[int, list[int]] = {}

    def _tree(self, set_index: int) -> list[int]:
        tree = self._bits.get(set_index)
        if tree is None:
            tree = [0] * (self._assoc - 1)
            self._bits[set_index] = tree
        return tree

    def _touch(self, set_index: int, way: int) -> None:
        """Point every bit on ``way``'s path away from ``way``."""
        tree = self._tree(set_index)
        node = 0
        span = self._assoc
        base = 0
        while span > 1:
            half = span // 2
            goes_right = way >= base + half
            # Bit semantics: 0 means "LRU side is left", 1 "LRU is right".
            tree[node] = 0 if goes_right else 1
            if goes_right:
                base += half
                node = 2 * node + 2
            else:
                node = 2 * node + 1
            span = half

    def on_hit(self, contents: list[int], way: int, set_index: int) -> None:
        self._touch(set_index, way)

    def on_fill(self, contents: list[int], addr: int, set_index: int) -> None:
        contents.append(addr)
        self._touch(set_index, len(contents) - 1)

    def victim_index(self, contents: list[int], set_index: int) -> int:
        tree = self._tree(set_index)
        node = 0
        span = self._assoc
        base = 0
        while span > 1:
            half = span // 2
            if tree[node]:  # LRU is on the right half
                base += half
                node = 2 * node + 2
            else:
                node = 2 * node + 1
            span = half
        # A victim index can only be requested for a full set, where
        # positions 0..assoc-1 are all populated.
        return base


_POLICIES = {
    "lru": lambda assoc, seed: LRUPolicy(),
    "fifo": lambda assoc, seed: FIFOPolicy(),
    "random": lambda assoc, seed: RandomPolicy(seed),
    "plru": lambda assoc, seed: TreePLRUPolicy(assoc),
}


def make_policy(
    name: str, associativity: int, seed: int = 0
) -> ReplacementPolicy:
    """Build a replacement policy by name (``lru|fifo|random|plru``)."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise CacheConfigError(
            f"unknown replacement policy {name!r} "
            f"(known: {', '.join(sorted(_POLICIES))})"
        ) from None
    return factory(associativity, seed)
