"""Simulated multicore hardware substrate.

This package provides the machine that CAER runs on in this
reproduction: set-associative caches (:mod:`repro.arch.cache`), a
private-L1/L2 + shared-inclusive-L3 hierarchy
(:mod:`repro.arch.hierarchy`), a latency/bandwidth main-memory model
(:mod:`repro.arch.memory`), per-core performance counters
(:mod:`repro.arch.pmu`), a stall-based core execution model
(:mod:`repro.arch.core`), and the assembled chip
(:mod:`repro.arch.chip`).
"""

from .cache import SetAssociativeCache
from .chip import MulticoreChip
from .core import Core
from .hierarchy import CacheHierarchy, HierarchyCounters
from .memory import MainMemory
from .pmu import CorePMU, PMUSample
from .replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TreePLRUPolicy,
    make_policy,
)

__all__ = [
    "SetAssociativeCache",
    "MulticoreChip",
    "Core",
    "CacheHierarchy",
    "HierarchyCounters",
    "MainMemory",
    "CorePMU",
    "PMUSample",
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "TreePLRUPolicy",
    "make_policy",
]
