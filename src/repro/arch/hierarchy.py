"""The Nehalem-style cache hierarchy: private L1/L2, shared inclusive L3.

This module implements the piece of hardware the whole paper revolves
around.  Contention is *emergent* here, not injected: every core's L3
fills go through common LRU sets, so a core that inserts lines quickly
(a streaming batch application such as ``lbm``) progressively evicts the
lines of its neighbours, raising their L3 miss counts — which is exactly
the signal CAER's detectors watch.  Because the L3 is inclusive, an L3
eviction also *back-invalidates* the victim line from its owner's
private L1/L2, amplifying cross-core interference just as on the real
i7 920.

:class:`CacheHierarchy` exposes a single hot-path verb,
:meth:`CacheHierarchy.access`, returning the level that served the
access (1, 2, 3, or 4 = main memory) so the core model can charge the
right latency, and per-core cumulative counters that the PMU layer
exposes to CAER.
"""

from __future__ import annotations

from itertools import repeat as _repeat
from typing import Sequence

from time import perf_counter as _perf_counter

from ..config import MachineConfig
from ..errors import ConfigError
from ..obs.profiling import PROFILER as _PROFILER
from .cache import (
    SetAssociativeCache,
    bulk_kernel_enabled,
    debug_invariants_enabled,
    owner_arrays_enabled,
    vector_fills_enabled,
)
from .replacement import make_policy
from .vector_kernel import classify as _vector_classify
from .vector_kernel import commit as _vector_commit

#: Access outcome levels returned by :meth:`CacheHierarchy.access`.
L1_HIT, L2_HIT, L3_HIT, MEMORY = 1, 2, 3, 4


class HierarchyCounters:
    """Cumulative per-core memory-system event counts.

    The PMU layer (:mod:`repro.arch.pmu`) snapshots these to produce the
    per-period deltas CAER consumes; they are therefore monotone and are
    never reset during a run.
    """

    __slots__ = (
        "l1_hits",
        "l1_misses",
        "l2_hits",
        "l2_misses",
        "l3_hits",
        "l3_misses",
        "back_invalidations",
        "lines_stolen",
        "prefetch_fills",
        "writebacks",
    )

    def __init__(self) -> None:
        self.l1_hits = 0
        self.l1_misses = 0
        self.l2_hits = 0
        self.l2_misses = 0
        self.l3_hits = 0
        self.l3_misses = 0
        #: private-cache lines of *this* core killed by L3 evictions
        self.back_invalidations = 0
        #: L3 lines of this core evicted by *another* core's fills
        self.lines_stolen = 0
        #: lines brought into the L3 by the next-line prefetcher
        self.prefetch_fills = 0
        #: dirty L3 lines of this core written back to memory
        self.writebacks = 0

    @property
    def llc_references(self) -> int:
        """Accesses that reached the shared last-level cache."""
        return self.l3_hits + self.l3_misses

    @property
    def llc_misses(self) -> int:
        """Accesses that left the chip (the paper's key event)."""
        return self.l3_misses

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot, for logging and tests."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return f"HierarchyCounters({self.as_dict()})"


class CacheHierarchy:
    """Private L1/L2 per core plus one shared (optionally inclusive) L3."""

    def __init__(self, machine: MachineConfig, seed: int = 0):
        self.machine = machine
        n = machine.num_cores
        self.l1 = [
            SetAssociativeCache(
                f"L1.core{c}",
                machine.l1,
                make_policy(machine.replacement, machine.l1.associativity,
                            seed + 101 * c),
            )
            for c in range(n)
        ]
        self.l2 = [
            SetAssociativeCache(
                f"L2.core{c}",
                machine.l2,
                make_policy(machine.replacement, machine.l2.associativity,
                            seed + 211 * c),
            )
            for c in range(n)
        ]
        self.l3 = SetAssociativeCache(
            "L3.shared",
            machine.l3,
            make_policy(machine.replacement, machine.l3.associativity, seed),
            vector_storage=True,
        )
        self.counters = [HierarchyCounters() for _ in range(n)]
        self._inclusive = machine.l3_inclusive
        self._prefetch_degree = machine.prefetch_degree
        self._writebacks_enabled = machine.model_writebacks
        # Per-core L3 occupancy quota in lines (None = unlimited); the
        # hardware-partitioning hook the paper's related work assumes
        # (§7: cache partitioning/QoS proposals).
        self._l3_quota: list[int | None] = [None] * n
        self._dirty: set[int] = set()
        self._store_ratio = [0.0] * n
        self._store_accumulator = [0.0] * n
        #: optional memory-channel hook so prefetch traffic is charged
        #: against bandwidth (set by the chip)
        self.memory = None
        # Owner sets: which cores pulled each resident L3 line in.  Used
        # for back-invalidation targeting and per-core occupancy stats.
        self._l3_owners: dict[int, set[int]] = {}
        self._occupancy = [0] * n
        # Tier-5 ownership store: a per-slot owner bitmask column on
        # the flat L3 (bit c = core c owns the line in that slot)
        # replacing the dict-of-sets walks with index math the batched
        # kernels can gather/scatter.  Requires flat storage (the
        # column is slot-indexed), an inclusive L3 (the only
        # configuration whose eviction fan-out is hot enough to earn
        # the column; non-inclusive hierarchies refuse the array path
        # and stay on the reference dict), and core count within an
        # int64's non-sign bits.  The dict stays the reference tier
        # (`REPRO_OWNER_ARRAYS=0`), proven bit-identical by the
        # differential suite.
        self._owner_arrays = (
            owner_arrays_enabled()
            and self.l3._flat
            and machine.l3_inclusive
            and n <= 63
        )
        if self._owner_arrays:
            self.l3.attach_owner_column()
        # Whether the vector kernel may use the batched index-math
        # private fill (REPRO_VECTOR_FILLS; the PR-6 reconstruction
        # knob of bench_simspeed's ownership gates).
        self._vector_fills = vector_fills_enabled()
        # Opt-in self-checks after every batch (differential suite).
        self._debug_invariants = debug_invariants_enabled()
        # Prebound per-core hot-path verbs (picks up the caches'
        # LRU-specialized rebindings); one list index replaces two
        # attribute lookups and a method bind per access.
        self._l1_probes = [cache.probe for cache in self.l1]
        self._l1_fills = [cache.fill for cache in self.l1]
        self._l2_probes = [cache.probe for cache in self.l2]
        self._l2_fills = [cache.fill for cache in self.l2]
        self._l3_probe = self.l3.probe
        # Whether the bulk-access kernel may be used at all (flat-array
        # LRU storage is a separate per-cache property; see
        # bulk_kernel_ok for the full predicate).
        self._bulk_enabled = bulk_kernel_enabled()

    # -- hot path ------------------------------------------------------

    def access(self, core: int, addr: int) -> int:
        """Route one load through the hierarchy; return the serving level.

        Fills every level on the way back (write-allocate, no writeback
        modelling: the paper's contention signal is read-miss traffic).
        """
        counters = self.counters[core]
        if self._writebacks_enabled:
            acc = self._store_accumulator[core] + self._store_ratio[core]
            if acc >= 1.0:
                acc -= 1.0
                self._dirty.add(addr)
            self._store_accumulator[core] = acc
        if self._l1_probes[core](addr):
            counters.l1_hits += 1
            return L1_HIT
        counters.l1_misses += 1
        if self._l2_probes[core](addr):
            counters.l2_hits += 1
            self._l1_fills[core](addr)
            return L2_HIT
        counters.l2_misses += 1
        if self._l3_probe(addr):
            counters.l3_hits += 1
            if self._owner_arrays:
                # The probe just made the line MRU, so its slot is the
                # logical tail of its set — O(1) index math, no lookup.
                l3 = self.l3
                assoc = l3._assoc
                si = addr & l3._set_mask
                fill = l3._fill_counts[si]
                if fill < assoc:
                    slot = si * assoc + fill - 1
                else:
                    head = l3._heads[si]
                    slot = si * assoc + (head - 1 if head else assoc - 1)
                ot = l3._owner_tags
                bit = 1 << core
                ob = ot[slot]
                if not ob & bit:
                    ot[slot] = ob | bit
                    self._occupancy[core] += 1
            else:
                owners = self._l3_owners.get(addr)
                if owners is not None and core not in owners:
                    owners.add(core)
                    self._occupancy[core] += 1
            self._fill_private(core, addr)
            return L3_HIT
        counters.l3_misses += 1
        self._fill_l3(core, addr)
        self._fill_private(core, addr)
        if self._prefetch_degree:
            self._prefetch(core, addr)
        return MEMORY

    def access_many(self, core: int, addrs: Sequence[int]) -> list[int]:
        """Route a whole address batch; return the per-address levels.

        Semantically identical to ``[self.access(core, a) for a in
        addrs]`` — and that is literally what runs when
        :meth:`bulk_kernel_ok` denies the kernel (non-LRU policies,
        writebacks, prefetch, an L3 quota on this core, or
        ``REPRO_BULK_KERNEL=0``).  On the kernel path all hot state is
        hoisted into locals, the L1/L2/L3 probes and fills are inlined
        over the flat tag arrays, and per-access counter increments
        become batch-local integer deltas flushed into
        :class:`HierarchyCounters` (and the per-cache stats) once at
        the end.  Runs of identical consecutive addresses collapse into
        one walk plus guaranteed L1 hits: after any access the line is
        MRU in this core's L1, and nothing else can touch the hierarchy
        mid-batch (cores interleave at slice granularity).
        """
        if not self.bulk_kernel_ok(core):
            access = self.access
            levels = [access(core, a) for a in addrs]
            if self._debug_invariants:
                self.check_owner_invariants()
            return levels
        l1 = self.l1[core]
        l2 = self.l2[core]
        l3 = self.l3
        if addrs:
            # One conservative raise of the monotone fill bounds covers
            # every inlined fill below (see SetAssociativeCache._max_tag).
            mx = max(addrs)
            if mx > l1._max_tag:
                l1._max_tag = mx
            if mx > l2._max_tag:
                l2._max_tag = mx
            if mx > l3._max_tag:
                l3._max_tag = mx
        l1_tags = l1._tags
        l1_fill = l1._fill_counts
        l1_heads = l1._heads
        l1_mru = l1._mru
        l1_res = l1._resident
        l1_mask = l1._set_mask
        l1_assoc = l1._assoc
        l2_tags = l2._tags
        l2_fill = l2._fill_counts
        l2_heads = l2._heads
        l2_mru = l2._mru
        l2_res = l2._resident
        l2_mask = l2._set_mask
        l2_assoc = l2._assoc
        l3_tags = l3._tags
        l3_fill = l3._fill_counts
        l3_heads = l3._heads
        l3_mru = l3._mru
        l3_res = l3._resident
        l3_mask = l3._set_mask
        l3_assoc = l3._assoc
        l1_res_add = l1_res.add
        l1_res_discard = l1_res.discard
        l2_res_add = l2_res.add
        l2_res_discard = l2_res.discard
        l3_res_add = l3_res.add
        l3_res_discard = l3_res.discard
        l1_invalidate = l1.invalidate
        l2_invalidate = l2.invalidate
        owners_map = self._l3_owners
        owners_get = owners_map.get
        owners_pop = owners_map.pop
        occupancy = self._occupancy
        owner_arrays = self._owner_arrays
        l3_owner = l3._owner_tags
        own_bit = 1 << core
        counters_all = self.counters
        inclusive = self._inclusive
        l1_caches = self.l1
        l2_caches = self.l2
        counters_core = counters_all[core]
        levels: list[int] = []
        lv_append = levels.append
        lv_extend = levels.extend
        # Batch-local deltas: hierarchy counters and cache stats.
        nh1 = nm1 = nh2 = nm2 = nh3 = nm3 = 0
        fl1 = ev1 = fl2 = ev2 = fl3 = ev3 = 0
        i = 0
        n = len(addrs)
        while i < n:
            addr = addrs[i]
            j = i + 1
            # Trailing repeats are guaranteed L1 MRU hits; let the end
            # of the batch terminate the scan instead of re-checking
            # the bound on every step.
            try:
                while addrs[j] == addr:
                    j += 1
            except IndexError:
                j = n
            run = j - i - 1
            i = j
            si1 = addr & l1_mask
            if l1_mru[si1] == addr:
                nh1 += run + 1
                if run:
                    lv_extend(_repeat(1, run + 1))
                else:
                    lv_append(1)
                continue
            if addr in l1_res:
                # Non-MRU L1 hit: move to the logical tail (wrap-aware
                # when the full set's window is rotated).
                base1 = si1 * l1_assoc
                fill = l1_fill[si1]
                if fill < l1_assoc:
                    top = base1 + fill
                    w = l1_tags.index(addr, base1, top)
                    l1_tags[w:top - 1] = l1_tags[w + 1:top]
                    l1_tags[top - 1] = addr
                else:
                    head = l1_heads[si1]
                    w = l1_tags.index(addr, base1, base1 + l1_assoc)
                    tail = base1 + (head - 1 if head else l1_assoc - 1)
                    if w <= tail:
                        l1_tags[w:tail] = l1_tags[w + 1:tail + 1]
                        l1_tags[tail] = addr
                    else:
                        end = base1 + l1_assoc - 1
                        l1_tags[w:end] = l1_tags[w + 1:end + 1]
                        l1_tags[end] = l1_tags[base1]
                        l1_tags[base1:tail] = l1_tags[base1 + 1:tail + 1]
                        l1_tags[tail] = addr
                l1_mru[si1] = addr
                nh1 += run + 1
                if run:
                    lv_extend(_repeat(1, run + 1))
                else:
                    lv_append(1)
                continue
            nm1 += 1
            # -- L2 probe (move-to-tail on hit) ------------------------
            si2 = addr & l2_mask
            if l2_mru[si2] == addr:
                hit = True
            elif addr in l2_res:
                base2 = si2 * l2_assoc
                fill = l2_fill[si2]
                if fill < l2_assoc:
                    top = base2 + fill
                    w = l2_tags.index(addr, base2, top)
                    l2_tags[w:top - 1] = l2_tags[w + 1:top]
                    l2_tags[top - 1] = addr
                else:
                    head = l2_heads[si2]
                    w = l2_tags.index(addr, base2, base2 + l2_assoc)
                    tail = base2 + (head - 1 if head else l2_assoc - 1)
                    if w <= tail:
                        l2_tags[w:tail] = l2_tags[w + 1:tail + 1]
                        l2_tags[tail] = addr
                    else:
                        end = base2 + l2_assoc - 1
                        l2_tags[w:end] = l2_tags[w + 1:end + 1]
                        l2_tags[end] = l2_tags[base2]
                        l2_tags[base2:tail] = l2_tags[base2 + 1:tail + 1]
                        l2_tags[tail] = addr
                l2_mru[si2] = addr
                hit = True
            else:
                hit = False
            if hit:
                nh2 += 1
                # Fill L1: the membership probe above just missed, so
                # the line is absent -- insert directly, no rescan.
                base1 = si1 * l1_assoc
                fill = l1_fill[si1]
                if fill >= l1_assoc:
                    head = l1_heads[si1]
                    slot = base1 + head
                    l1_res_discard(l1_tags[slot])
                    l1_tags[slot] = addr
                    l1_heads[si1] = head + 1 if head + 1 < l1_assoc else 0
                    ev1 += 1
                else:
                    l1_tags[base1 + fill] = addr
                    l1_fill[si1] = fill + 1
                l1_res_add(addr)
                l1_mru[si1] = addr
                fl1 += 1
                lv_append(2)
                if run:
                    nh1 += run
                    lv_extend(_repeat(1, run))
                continue
            nm2 += 1
            # -- L3 probe ----------------------------------------------
            si3 = addr & l3_mask
            if l3_mru[si3] == addr:
                hit = True
            elif addr in l3_res:
                base3 = si3 * l3_assoc
                fill = l3_fill[si3]
                if fill < l3_assoc:
                    top = base3 + fill
                    w = l3_tags.index(addr, base3, top)
                    if owner_arrays:
                        ob = l3_owner[w]
                        l3_owner[w:top - 1] = l3_owner[w + 1:top]
                        l3_owner[top - 1] = ob
                    l3_tags[w:top - 1] = l3_tags[w + 1:top]
                    l3_tags[top - 1] = addr
                else:
                    head = l3_heads[si3]
                    w = l3_tags.index(addr, base3, base3 + l3_assoc)
                    tail = base3 + (head - 1 if head else l3_assoc - 1)
                    if w <= tail:
                        if owner_arrays:
                            ob = l3_owner[w]
                            l3_owner[w:tail] = l3_owner[w + 1:tail + 1]
                            l3_owner[tail] = ob
                        l3_tags[w:tail] = l3_tags[w + 1:tail + 1]
                        l3_tags[tail] = addr
                    else:
                        end = base3 + l3_assoc - 1
                        if owner_arrays:
                            ob = l3_owner[w]
                            l3_owner[w:end] = l3_owner[w + 1:end + 1]
                            l3_owner[end] = l3_owner[base3]
                            l3_owner[base3:tail] = \
                                l3_owner[base3 + 1:tail + 1]
                            l3_owner[tail] = ob
                        l3_tags[w:end] = l3_tags[w + 1:end + 1]
                        l3_tags[end] = l3_tags[base3]
                        l3_tags[base3:tail] = l3_tags[base3 + 1:tail + 1]
                        l3_tags[tail] = addr
                l3_mru[si3] = addr
                hit = True
            else:
                hit = False
            if hit:
                nh3 += 1
                if owner_arrays:
                    # The hit line is now its set's logical tail.
                    fill = l3_fill[si3]
                    if fill < l3_assoc:
                        slot = si3 * l3_assoc + fill - 1
                    else:
                        head = l3_heads[si3]
                        slot = si3 * l3_assoc + \
                            (head - 1 if head else l3_assoc - 1)
                    ob = l3_owner[slot]
                    if not ob & own_bit:
                        l3_owner[slot] = ob | own_bit
                        occupancy[core] += 1
                else:
                    owners = owners_get(addr)
                    if owners is not None and core not in owners:
                        owners.add(core)
                        occupancy[core] += 1
                level = 3
            else:
                nm3 += 1
                # Fill L3 (absent: just probed and missed).  A full set
                # is a circular window: evict-and-insert rewrites the
                # head slot, no shifting.
                base3 = si3 * l3_assoc
                fill = l3_fill[si3]
                if fill >= l3_assoc:
                    head = l3_heads[si3]
                    slot = base3 + head
                    victim = l3_tags[slot]
                    l3_tags[slot] = addr
                    l3_heads[si3] = head + 1 if head + 1 < l3_assoc else 0
                    l3_res_discard(victim)
                    ev3 += 1
                    if owner_arrays:
                        # The victim's owner mask sits in the slot the
                        # new tag just overwrote; decode it before
                        # replacing it with our own bit.
                        vmask = l3_owner[slot]
                        if vmask == own_bit:
                            # Dominant case: evicting our own line.
                            # The mask carries over unchanged and the
                            # occupancy -1/+1 cancels.
                            if inclusive:
                                inv = False
                                if victim in l2_res:
                                    l2_invalidate(victim)
                                    inv = True
                                if victim in l1_res:
                                    l1_invalidate(victim)
                                    inv = True
                                if inv:
                                    counters_core.back_invalidations += 1
                        elif vmask == 0:
                            l3_owner[slot] = own_bit
                            occupancy[core] += 1
                        else:
                            m = vmask
                            owner = 0
                            while m:
                                if m & 1:
                                    occupancy[owner] -= 1
                                    if owner == core:
                                        if inclusive:
                                            inv = False
                                            if victim in l2_res:
                                                l2_invalidate(victim)
                                                inv = True
                                            if victim in l1_res:
                                                l1_invalidate(victim)
                                                inv = True
                                            if inv:
                                                counters_core.back_invalidations += 1
                                    else:
                                        counters_all[owner].lines_stolen += 1
                                        if inclusive:
                                            invalidated = l2_caches[
                                                owner
                                            ].invalidate(victim)
                                            invalidated |= l1_caches[
                                                owner
                                            ].invalidate(victim)
                                            if invalidated:
                                                counters_all[
                                                    owner
                                                ].back_invalidations += 1
                                m >>= 1
                                owner += 1
                            l3_owner[slot] = own_bit
                            occupancy[core] += 1
                    elif (owners := owners_pop(victim, None)) is None:
                        owners_map[addr] = {core}
                        occupancy[core] += 1
                    elif len(owners) == 1 and core in owners:
                        # Dominant case: evicting our own line.  The
                        # victim's occupancy -1 cancels the new line's
                        # +1 and the ownership set moves over as-is.
                        if inclusive:
                            # Back-invalidate our own private caches;
                            # the resident sets give the (almost
                            # always negative) verdict in one hash
                            # probe each.
                            inv = False
                            if victim in l2_res:
                                l2_invalidate(victim)
                                inv = True
                            if victim in l1_res:
                                l1_invalidate(victim)
                                inv = True
                            if inv:
                                counters_core.back_invalidations += 1
                        owners_map[addr] = owners
                    else:
                        for owner in owners:
                            occupancy[owner] -= 1
                            if owner == core:
                                if inclusive:
                                    inv = False
                                    if victim in l2_res:
                                        l2_invalidate(victim)
                                        inv = True
                                    if victim in l1_res:
                                        l1_invalidate(victim)
                                        inv = True
                                    if inv:
                                        counters_core.back_invalidations += 1
                            else:
                                counters_all[owner].lines_stolen += 1
                                if inclusive:
                                    invalidated = l2_caches[
                                        owner
                                    ].invalidate(victim)
                                    invalidated |= l1_caches[
                                        owner
                                    ].invalidate(victim)
                                    if invalidated:
                                        counters_all[
                                            owner
                                        ].back_invalidations += 1
                        # Reuse the popped set for the new line's
                        # ownership record instead of allocating one
                        # per miss.
                        owners.clear()
                        owners.add(core)
                        owners_map[addr] = owners
                        occupancy[core] += 1
                else:
                    l3_tags[base3 + fill] = addr
                    l3_fill[si3] = fill + 1
                    if owner_arrays:
                        l3_owner[base3 + fill] = own_bit
                    else:
                        owners_map[addr] = {core}
                    occupancy[core] += 1
                l3_res_add(addr)
                l3_mru[si3] = addr
                fl3 += 1
                level = 4
            # -- private fills (L2 then L1, both absent) ---------------
            # Fill counts are read here, after the L3-miss path: a
            # back-invalidation above may have removed our own lines.
            base2 = si2 * l2_assoc
            fill = l2_fill[si2]
            if fill >= l2_assoc:
                head = l2_heads[si2]
                slot = base2 + head
                l2_res_discard(l2_tags[slot])
                l2_tags[slot] = addr
                l2_heads[si2] = head + 1 if head + 1 < l2_assoc else 0
                ev2 += 1
            else:
                l2_tags[base2 + fill] = addr
                l2_fill[si2] = fill + 1
            l2_res_add(addr)
            l2_mru[si2] = addr
            fl2 += 1
            base1 = si1 * l1_assoc
            fill = l1_fill[si1]
            if fill >= l1_assoc:
                head = l1_heads[si1]
                slot = base1 + head
                l1_res_discard(l1_tags[slot])
                l1_tags[slot] = addr
                l1_heads[si1] = head + 1 if head + 1 < l1_assoc else 0
                ev1 += 1
            else:
                l1_tags[base1 + fill] = addr
                l1_fill[si1] = fill + 1
            l1_res_add(addr)
            l1_mru[si1] = addr
            fl1 += 1
            lv_append(level)
            if run:
                nh1 += run
                lv_extend(_repeat(1, run))
        # -- flush batch-local deltas ----------------------------------
        counters_core.l1_hits += nh1
        counters_core.l1_misses += nm1
        counters_core.l2_hits += nh2
        counters_core.l2_misses += nm2
        counters_core.l3_hits += nh3
        counters_core.l3_misses += nm3
        stats = l1.stats
        stats.hits += nh1
        stats.misses += nm1
        stats.fills += fl1
        stats.evictions += ev1
        stats = l2.stats
        stats.hits += nh2
        stats.misses += nm2
        stats.fills += fl2
        stats.evictions += ev2
        stats = l3.stats
        stats.hits += nh3
        stats.misses += nm3
        stats.fills += fl3
        stats.evictions += ev3
        if self._debug_invariants:
            self.check_owner_invariants()
        return levels

    def _prefetch(self, core: int, addr: int) -> None:
        """Next-line prefetch into the L3 on a demand memory access.

        The core pays no stall for prefetched lines, but each prefetch
        is a real memory transfer: it occupies the channel (bandwidth
        accounting through :attr:`memory`) and can evict useful lines.
        """
        counters = self.counters[core]
        for delta in range(1, self._prefetch_degree + 1):
            paddr = addr + delta
            if self.l3.contains(paddr):
                continue
            self._fill_l3(core, paddr)
            counters.prefetch_fills += 1
            if self.memory is not None:
                self.memory.access(0.0)

    def _fill_private(self, core: int, addr: int) -> None:
        self._l2_fills[core](addr)
        self._l1_fills[core](addr)

    def set_l3_quota(self, core: int, fraction: float | None) -> None:
        """Cap ``core``'s L3 occupancy at ``fraction`` of capacity.

        While over quota, the core's L3 fills evict one of its *own*
        lines from the target set when possible, instead of stealing a
        neighbour's LRU line — a soft way-partition approximating the
        hardware QoS proposals of the paper's §7.  ``None`` removes the
        cap.
        """
        if fraction is None:
            self._l3_quota[core] = None
            return
        if not 0.0 < fraction <= 1.0:
            raise ConfigError(
                f"quota fraction must be in (0, 1]: {fraction}"
            )
        self._l3_quota[core] = int(fraction * self.l3.capacity_lines)

    def set_store_ratio(self, core: int, ratio: float) -> None:
        """Declare the fraction of ``core``'s accesses that are stores.

        Called by the core model at phase boundaries; a no-op effect
        unless the machine models writebacks.
        """
        self._store_ratio[core] = ratio

    def _fill_l3(self, core: int, addr: int) -> None:
        quota = self._l3_quota[core]
        if quota is not None and self._occupancy[core] >= quota:
            self._evict_own_line(core, addr)
        victim = self.l3.fill(addr)
        if victim is not None and self._writebacks_enabled \
                and victim in self._dirty:
            # Dirty eviction: the line travels back to memory,
            # consuming channel bandwidth.
            self._dirty.discard(victim)
            self.counters[core].writebacks += 1
            if self.memory is not None:
                self.memory.access(0.0)
        if self._owner_arrays:
            self._fill_l3_owner_array(core, addr, victim)
            return
        if victim is not None:
            victim_owners = self._l3_owners.pop(victim, set())
            for owner in victim_owners:
                self._occupancy[owner] -= 1
                if owner != core:
                    self.counters[owner].lines_stolen += 1
                if self._inclusive:
                    invalidated = self.l2[owner].invalidate(victim)
                    invalidated |= self.l1[owner].invalidate(victim)
                    if invalidated:
                        self.counters[owner].back_invalidations += 1
        self._l3_owners[addr] = {core}
        self._occupancy[core] += 1

    def _fill_l3_owner_array(
        self, core: int, addr: int, victim: int | None
    ) -> None:
        """Owner bookkeeping for a just-filled L3 line (array store).

        ``SetAssociativeCache.fill`` never touches the owner column, so
        on eviction the victim's bitmask is still sitting in the slot
        the new tag landed in — decode it there, fan out the occupancy
        pops / stolen-line counts / back-invalidations, then claim the
        slot with this core's bit.
        """
        l3 = self.l3
        si = addr & l3._set_mask
        assoc = l3._assoc
        fill = l3._fill_counts[si]
        if fill < assoc:
            slot = si * assoc + fill - 1
        else:
            head = l3._heads[si]
            slot = si * assoc + (head - 1 if head else assoc - 1)
        owner_tags = l3._owner_tags
        assert owner_tags is not None
        if victim is not None:
            m = owner_tags[slot]
            owner = 0
            while m:
                if m & 1:
                    self._occupancy[owner] -= 1
                    if owner != core:
                        self.counters[owner].lines_stolen += 1
                    if self._inclusive:
                        invalidated = self.l2[owner].invalidate(victim)
                        invalidated |= self.l1[owner].invalidate(victim)
                        if invalidated:
                            self.counters[owner].back_invalidations += 1
                m >>= 1
                owner += 1
        owner_tags[slot] = 1 << core
        self._occupancy[core] += 1

    def _evict_own_line(self, core: int, addr: int) -> None:
        """Pre-evict one of ``core``'s own lines from ``addr``'s set.

        Called when the core is over its L3 quota: by removing an own
        line first, the subsequent fill lands in the freed way and no
        neighbour line is displaced.  If the core owns nothing in the
        set, the fill proceeds normally (the quota is soft).
        """
        set_index = addr & (self.l3.geometry.num_sets - 1)
        if self._owner_arrays:
            # Walk the set's slots in logical LRU order and pick the
            # first line carrying this core's owner bit (same order the
            # dict path sees through ``set_contents``).
            l3 = self.l3
            assoc = l3._assoc
            base = set_index * assoc
            fill = l3._fill_counts[set_index]
            head = l3._heads[set_index] if fill >= assoc else 0
            count = fill if fill < assoc else assoc
            owner_tags = l3._owner_tags
            assert owner_tags is not None
            tags = l3._tags
            bit = 1 << core
            for p in range(count):
                slot = base + (head + p) % assoc
                mask = owner_tags[slot]
                candidate = tags[slot]
                if mask & bit and candidate != addr:
                    # ``invalidate`` compacts the owner column in
                    # lockstep, so decode the mask first.
                    l3.invalidate(candidate)
                    m = mask
                    owner = 0
                    while m:
                        if m & 1:
                            self._occupancy[owner] -= 1
                            if self._inclusive:
                                invalidated = self.l2[owner].invalidate(
                                    candidate
                                )
                                invalidated |= self.l1[owner].invalidate(
                                    candidate
                                )
                                if invalidated and owner != core:
                                    self.counters[
                                        owner
                                    ].back_invalidations += 1
                        m >>= 1
                        owner += 1
                    return
            return
        for candidate in self.l3.set_contents(set_index):
            owners = self._l3_owners.get(candidate)
            if owners is not None and core in owners and \
                    candidate != addr:
                self.l3.invalidate(candidate)
                self._l3_owners.pop(candidate, None)
                for owner in owners:
                    self._occupancy[owner] -= 1
                    if self._inclusive:
                        invalidated = self.l2[owner].invalidate(candidate)
                        invalidated |= self.l1[owner].invalidate(candidate)
                        if invalidated and owner != core:
                            self.counters[owner].back_invalidations += 1
                return

    def l1_mru_fastpath_ok(self, core: int) -> bool:
        """Whether ``core`` may inline the L1 MRU-hit check.

        Requires the L1 policy to treat a re-touch of the MRU line as a
        no-op (LRU/FIFO/Random, with specialization on) and writeback
        modelling to be off — with stores modelled, every access must
        run the store accumulator inside :meth:`access`.
        """
        return self.l1[core].hit_is_mru_noop and \
            not self._writebacks_enabled

    def bulk_kernel_ok(self, core: int) -> bool:
        """Whether ``core`` may route batches through :meth:`access_many`.

        The single predicate centralising every fallback condition (the
        bulk sibling of :meth:`l1_mru_fastpath_ok`): the kernel inlines
        flat-array LRU walks only, so every level this core touches
        must use the flat storage (plain LRU with specialization on),
        and the per-access side channels the kernel does not model —
        the store accumulator (writebacks), the next-line prefetcher,
        and this core's L3 occupancy quota — must all be off.  Quotas
        arrive mid-run (CAER's response hook), so the answer can change
        between periods; callers re-check per batch loop.
        """
        return (
            self._bulk_enabled
            and not self._writebacks_enabled
            and not self._prefetch_degree
            and self._l3_quota[core] is None
            and self.l1[core]._flat
            and self.l2[core]._flat
            and self.l3._flat
        )

    def vector_kernel_ok(self, core: int) -> bool:
        """Whether ``core`` may route batches through the vector kernel.

        Tier 4 sits strictly above the bulk kernel in the fallback
        ladder: everything :meth:`bulk_kernel_ok` requires, plus the
        ``array('q')``-backed storage (with its numpy views) on the
        shared L3 — which
        :class:`repro.arch.cache.SetAssociativeCache` only allocates
        when ``REPRO_VECTOR_KERNEL`` was on at construction.  The
        private levels stay list-backed (the vector kernel fills them
        with scalar verbs; their capacities are too small for numpy to
        win), so only the L3 storage gates the tier.
        """
        return self.bulk_kernel_ok(core) and self.l3._vector

    def vector_classify(self, core: int, addrs):
        """Classify an int64 batch for the vector kernel (pure read).

        Returns a :class:`repro.arch.vector_kernel.BatchPlan` whose
        serving levels let the core price the whole batch before
        touching any state, or ``None`` when the batch is not provably
        uniform and must route through :meth:`access_many` instead.

        When span profiling is armed (:mod:`repro.obs.profiling`) the
        batch's wall-clock cost lands in
        ``profile.vector_classify_seconds``; disabled, the check is a
        single attribute read on the kernel's hottest seam.
        """
        if _PROFILER.enabled:
            started = _perf_counter()
            plan = _vector_classify(self, core, addrs)
            _PROFILER.observe(
                "profile.vector_classify_seconds",
                _perf_counter() - started,
            )
            return plan
        return _vector_classify(self, core, addrs)

    def vector_commit(self, core: int, plan, n_exec: int) -> bool:
        """Apply a classified batch's first ``n_exec`` accesses.

        ``False`` means the bulk update could not replay the sequential
        walk and nothing was mutated; the caller must re-route the
        untouched batch through the scalar ladder.

        Profiled into ``profile.vector_commit_seconds`` when span
        profiling is armed (see :meth:`vector_classify`).
        """
        if _PROFILER.enabled:
            started = _perf_counter()
            committed = _vector_commit(self, core, plan, n_exec)
            _PROFILER.observe(
                "profile.vector_commit_seconds",
                _perf_counter() - started,
            )
        else:
            committed = _vector_commit(self, core, plan, n_exec)
        if committed and self._debug_invariants:
            self.check_owner_invariants()
        return committed

    # -- inspection ----------------------------------------------------

    def l3_occupancy(self, core: int) -> int:
        """L3 lines currently attributed to ``core`` (owner-set based)."""
        return self._occupancy[core]

    def l3_owner_sets(self) -> dict[int, set[int]]:
        """Reconstruct ``addr -> owning cores`` from the active store.

        Store-agnostic inspection seam: the dict tier returns a deep
        copy of ``_l3_owners``; the array tier decodes each occupied
        slot's bitmask.  Differential tests compare the two directly.
        """
        if not self._owner_arrays:
            return {a: set(o) for a, o in self._l3_owners.items()}
        l3 = self.l3
        owner_tags = l3._owner_tags
        assert owner_tags is not None
        tags = l3._tags
        assoc = l3._assoc
        out: dict[int, set[int]] = {}
        for si in range(l3._num_sets):
            base = si * assoc
            for slot in range(base, base + l3._fill_counts[si]):
                m = owner_tags[slot]
                owners: set[int] = set()
                owner = 0
                while m:
                    if m & 1:
                        owners.add(owner)
                    m >>= 1
                    owner += 1
                out[tags[slot]] = owners
        return out

    def check_owner_invariants(self) -> None:
        """Assert the L3 ownership store is internally consistent.

        Opt-in via ``REPRO_DEBUG_INVARIANTS=1`` (checked after every
        batch and committed vector plan) and called directly by the
        differential suite.  Verifies, for whichever store is active:

        - the owner map covers exactly the L3-resident lines;
        - every resident line has at least one owner;
        - per-core owner-bit counts equal ``_occupancy`` (which also
          forces sum(occupancy) == total owner bits).
        """
        owners_by_addr = self.l3_owner_sets()
        resident = self.l3.resident_lines()
        if set(owners_by_addr) != resident:
            extra = sorted(set(owners_by_addr) - resident)[:8]
            missing = sorted(resident - set(owners_by_addr))[:8]
            raise AssertionError(
                "owner map and L3 resident set disagree: "
                f"owned-not-resident={extra} resident-not-owned={missing}"
            )
        counts = [0] * self.machine.num_cores
        for addr, owners in owners_by_addr.items():
            if not owners:
                raise AssertionError(f"L3 line {addr} has no owner")
            for owner in owners:
                counts[owner] += 1
        if counts != self._occupancy:
            raise AssertionError(
                "per-core occupancy drifted from owner bits: "
                f"occupancy={self._occupancy} owner-bit counts={counts}"
            )

    def l3_occupancy_fraction(self, core: int) -> float:
        """``core``'s share of total L3 capacity, in [0, 1]."""
        return self._occupancy[core] / self.l3.capacity_lines

    def check_inclusion(self) -> list[int]:
        """Return private-resident lines missing from the L3.

        Empty when the inclusion property holds; used by tests and the
        engine's (optional) sanity hooks.
        """
        if not self._inclusive:
            return []
        l3_resident = self.l3.resident_lines()
        violations: list[int] = []
        for core in range(self.machine.num_cores):
            for cache in (self.l1[core], self.l2[core]):
                violations.extend(
                    addr
                    for addr in cache.resident_lines()
                    if addr not in l3_resident
                )
        return violations

    def flush(self) -> None:
        """Empty every level (e.g. between scenario repetitions)."""
        for cache in self.l1:
            cache.flush()
        for cache in self.l2:
            cache.flush()
        self.l3.flush()
        self._l3_owners.clear()
        self._occupancy = [0] * self.machine.num_cores
        self._dirty.clear()
        # The store accumulator is per-run state too: without this
        # reset, repetition N's dirty-line marking (with writebacks
        # modelled) would depend on where repetition N-1 left the
        # fractional store credit.
        self._store_accumulator = [0.0] * self.machine.num_cores

    def counters_for(self, core: int) -> HierarchyCounters:
        """The cumulative counter bank of one core."""
        if not 0 <= core < self.machine.num_cores:
            raise ConfigError(f"no such core: {core}")
        return self.counters[core]
