"""The Nehalem-style cache hierarchy: private L1/L2, shared inclusive L3.

This module implements the piece of hardware the whole paper revolves
around.  Contention is *emergent* here, not injected: every core's L3
fills go through common LRU sets, so a core that inserts lines quickly
(a streaming batch application such as ``lbm``) progressively evicts the
lines of its neighbours, raising their L3 miss counts — which is exactly
the signal CAER's detectors watch.  Because the L3 is inclusive, an L3
eviction also *back-invalidates* the victim line from its owner's
private L1/L2, amplifying cross-core interference just as on the real
i7 920.

:class:`CacheHierarchy` exposes a single hot-path verb,
:meth:`CacheHierarchy.access`, returning the level that served the
access (1, 2, 3, or 4 = main memory) so the core model can charge the
right latency, and per-core cumulative counters that the PMU layer
exposes to CAER.
"""

from __future__ import annotations

from ..config import MachineConfig
from ..errors import ConfigError
from .cache import SetAssociativeCache
from .replacement import make_policy

#: Access outcome levels returned by :meth:`CacheHierarchy.access`.
L1_HIT, L2_HIT, L3_HIT, MEMORY = 1, 2, 3, 4


class HierarchyCounters:
    """Cumulative per-core memory-system event counts.

    The PMU layer (:mod:`repro.arch.pmu`) snapshots these to produce the
    per-period deltas CAER consumes; they are therefore monotone and are
    never reset during a run.
    """

    __slots__ = (
        "l1_hits",
        "l1_misses",
        "l2_hits",
        "l2_misses",
        "l3_hits",
        "l3_misses",
        "back_invalidations",
        "lines_stolen",
        "prefetch_fills",
        "writebacks",
    )

    def __init__(self) -> None:
        self.l1_hits = 0
        self.l1_misses = 0
        self.l2_hits = 0
        self.l2_misses = 0
        self.l3_hits = 0
        self.l3_misses = 0
        #: private-cache lines of *this* core killed by L3 evictions
        self.back_invalidations = 0
        #: L3 lines of this core evicted by *another* core's fills
        self.lines_stolen = 0
        #: lines brought into the L3 by the next-line prefetcher
        self.prefetch_fills = 0
        #: dirty L3 lines of this core written back to memory
        self.writebacks = 0

    @property
    def llc_references(self) -> int:
        """Accesses that reached the shared last-level cache."""
        return self.l3_hits + self.l3_misses

    @property
    def llc_misses(self) -> int:
        """Accesses that left the chip (the paper's key event)."""
        return self.l3_misses

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot, for logging and tests."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return f"HierarchyCounters({self.as_dict()})"


class CacheHierarchy:
    """Private L1/L2 per core plus one shared (optionally inclusive) L3."""

    def __init__(self, machine: MachineConfig, seed: int = 0):
        self.machine = machine
        n = machine.num_cores
        self.l1 = [
            SetAssociativeCache(
                f"L1.core{c}",
                machine.l1,
                make_policy(machine.replacement, machine.l1.associativity,
                            seed + 101 * c),
            )
            for c in range(n)
        ]
        self.l2 = [
            SetAssociativeCache(
                f"L2.core{c}",
                machine.l2,
                make_policy(machine.replacement, machine.l2.associativity,
                            seed + 211 * c),
            )
            for c in range(n)
        ]
        self.l3 = SetAssociativeCache(
            "L3.shared",
            machine.l3,
            make_policy(machine.replacement, machine.l3.associativity, seed),
        )
        self.counters = [HierarchyCounters() for _ in range(n)]
        self._inclusive = machine.l3_inclusive
        self._prefetch_degree = machine.prefetch_degree
        self._writebacks_enabled = machine.model_writebacks
        # Per-core L3 occupancy quota in lines (None = unlimited); the
        # hardware-partitioning hook the paper's related work assumes
        # (§7: cache partitioning/QoS proposals).
        self._l3_quota: list[int | None] = [None] * n
        self._dirty: set[int] = set()
        self._store_ratio = [0.0] * n
        self._store_accumulator = [0.0] * n
        #: optional memory-channel hook so prefetch traffic is charged
        #: against bandwidth (set by the chip)
        self.memory = None
        # Owner sets: which cores pulled each resident L3 line in.  Used
        # for back-invalidation targeting and per-core occupancy stats.
        self._l3_owners: dict[int, set[int]] = {}
        self._occupancy = [0] * n
        # Prebound per-core hot-path verbs (picks up the caches'
        # LRU-specialized rebindings); one list index replaces two
        # attribute lookups and a method bind per access.
        self._l1_probes = [cache.probe for cache in self.l1]
        self._l1_fills = [cache.fill for cache in self.l1]
        self._l2_probes = [cache.probe for cache in self.l2]
        self._l2_fills = [cache.fill for cache in self.l2]
        self._l3_probe = self.l3.probe

    # -- hot path ------------------------------------------------------

    def access(self, core: int, addr: int) -> int:
        """Route one load through the hierarchy; return the serving level.

        Fills every level on the way back (write-allocate, no writeback
        modelling: the paper's contention signal is read-miss traffic).
        """
        counters = self.counters[core]
        if self._writebacks_enabled:
            acc = self._store_accumulator[core] + self._store_ratio[core]
            if acc >= 1.0:
                acc -= 1.0
                self._dirty.add(addr)
            self._store_accumulator[core] = acc
        if self._l1_probes[core](addr):
            counters.l1_hits += 1
            return L1_HIT
        counters.l1_misses += 1
        if self._l2_probes[core](addr):
            counters.l2_hits += 1
            self._l1_fills[core](addr)
            return L2_HIT
        counters.l2_misses += 1
        if self._l3_probe(addr):
            counters.l3_hits += 1
            owners = self._l3_owners.get(addr)
            if owners is not None and core not in owners:
                owners.add(core)
                self._occupancy[core] += 1
            self._fill_private(core, addr)
            return L3_HIT
        counters.l3_misses += 1
        self._fill_l3(core, addr)
        self._fill_private(core, addr)
        if self._prefetch_degree:
            self._prefetch(core, addr)
        return MEMORY

    def _prefetch(self, core: int, addr: int) -> None:
        """Next-line prefetch into the L3 on a demand memory access.

        The core pays no stall for prefetched lines, but each prefetch
        is a real memory transfer: it occupies the channel (bandwidth
        accounting through :attr:`memory`) and can evict useful lines.
        """
        counters = self.counters[core]
        for delta in range(1, self._prefetch_degree + 1):
            paddr = addr + delta
            if self.l3.contains(paddr):
                continue
            self._fill_l3(core, paddr)
            counters.prefetch_fills += 1
            if self.memory is not None:
                self.memory.access(0.0)

    def _fill_private(self, core: int, addr: int) -> None:
        self._l2_fills[core](addr)
        self._l1_fills[core](addr)

    def set_l3_quota(self, core: int, fraction: float | None) -> None:
        """Cap ``core``'s L3 occupancy at ``fraction`` of capacity.

        While over quota, the core's L3 fills evict one of its *own*
        lines from the target set when possible, instead of stealing a
        neighbour's LRU line — a soft way-partition approximating the
        hardware QoS proposals of the paper's §7.  ``None`` removes the
        cap.
        """
        if fraction is None:
            self._l3_quota[core] = None
            return
        if not 0.0 < fraction <= 1.0:
            raise ConfigError(
                f"quota fraction must be in (0, 1]: {fraction}"
            )
        self._l3_quota[core] = int(fraction * self.l3.capacity_lines)

    def set_store_ratio(self, core: int, ratio: float) -> None:
        """Declare the fraction of ``core``'s accesses that are stores.

        Called by the core model at phase boundaries; a no-op effect
        unless the machine models writebacks.
        """
        self._store_ratio[core] = ratio

    def _fill_l3(self, core: int, addr: int) -> None:
        quota = self._l3_quota[core]
        if quota is not None and self._occupancy[core] >= quota:
            self._evict_own_line(core, addr)
        victim = self.l3.fill(addr)
        if victim is not None:
            if self._writebacks_enabled and victim in self._dirty:
                # Dirty eviction: the line travels back to memory,
                # consuming channel bandwidth.
                self._dirty.discard(victim)
                self.counters[core].writebacks += 1
                if self.memory is not None:
                    self.memory.access(0.0)
            victim_owners = self._l3_owners.pop(victim, set())
            for owner in victim_owners:
                self._occupancy[owner] -= 1
                if owner != core:
                    self.counters[owner].lines_stolen += 1
                if self._inclusive:
                    invalidated = self.l2[owner].invalidate(victim)
                    invalidated |= self.l1[owner].invalidate(victim)
                    if invalidated:
                        self.counters[owner].back_invalidations += 1
        self._l3_owners[addr] = {core}
        self._occupancy[core] += 1

    def _evict_own_line(self, core: int, addr: int) -> None:
        """Pre-evict one of ``core``'s own lines from ``addr``'s set.

        Called when the core is over its L3 quota: by removing an own
        line first, the subsequent fill lands in the freed way and no
        neighbour line is displaced.  If the core owns nothing in the
        set, the fill proceeds normally (the quota is soft).
        """
        set_index = addr & (self.l3.geometry.num_sets - 1)
        for candidate in self.l3.set_contents(set_index):
            owners = self._l3_owners.get(candidate)
            if owners is not None and core in owners and \
                    candidate != addr:
                self.l3.invalidate(candidate)
                self._l3_owners.pop(candidate, None)
                for owner in owners:
                    self._occupancy[owner] -= 1
                    if self._inclusive:
                        invalidated = self.l2[owner].invalidate(candidate)
                        invalidated |= self.l1[owner].invalidate(candidate)
                        if invalidated and owner != core:
                            self.counters[owner].back_invalidations += 1
                return

    def l1_mru_fastpath_ok(self, core: int) -> bool:
        """Whether ``core`` may inline the L1 MRU-hit check.

        Requires the L1 policy to treat a re-touch of the MRU line as a
        no-op (LRU/FIFO/Random, with specialization on) and writeback
        modelling to be off — with stores modelled, every access must
        run the store accumulator inside :meth:`access`.
        """
        return self.l1[core].hit_is_mru_noop and \
            not self._writebacks_enabled

    # -- inspection ----------------------------------------------------

    def l3_occupancy(self, core: int) -> int:
        """L3 lines currently attributed to ``core`` (owner-set based)."""
        return self._occupancy[core]

    def l3_occupancy_fraction(self, core: int) -> float:
        """``core``'s share of total L3 capacity, in [0, 1]."""
        return self._occupancy[core] / self.l3.capacity_lines

    def check_inclusion(self) -> list[int]:
        """Return private-resident lines missing from the L3.

        Empty when the inclusion property holds; used by tests and the
        engine's (optional) sanity hooks.
        """
        if not self._inclusive:
            return []
        l3_resident = self.l3.resident_lines()
        violations: list[int] = []
        for core in range(self.machine.num_cores):
            for cache in (self.l1[core], self.l2[core]):
                violations.extend(
                    addr
                    for addr in cache.resident_lines()
                    if addr not in l3_resident
                )
        return violations

    def flush(self) -> None:
        """Empty every level (e.g. between scenario repetitions)."""
        for cache in self.l1:
            cache.flush()
        for cache in self.l2:
            cache.flush()
        self.l3.flush()
        self._l3_owners.clear()
        self._occupancy = [0] * self.machine.num_cores
        self._dirty.clear()

    def counters_for(self, core: int) -> HierarchyCounters:
        """The cumulative counter bank of one core."""
        if not 0 <= core < self.machine.num_cores:
            raise ConfigError(f"no such core: {core}")
        return self.counters[core]
