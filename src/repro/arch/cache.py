"""A set-associative cache operating on line addresses.

Addresses throughout the library are *cache line numbers* (integers);
byte offsets within a line never matter to the contention phenomena the
paper studies, so they are not modelled.  The set index is the low bits
of the line number, exactly as on real hardware where the line number is
the byte address shifted right by ``log2(line_bytes)``.

The cache does not fetch on miss by itself — miss handling (walking the
hierarchy, filling lines on the way back) is the job of
:class:`repro.arch.hierarchy.CacheHierarchy`.  This keeps the cache a
pure container with three verbs: :meth:`probe`, :meth:`fill`,
:meth:`invalidate`.
"""

from __future__ import annotations

import os

from ..config import CacheGeometry
from .replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
)


def fast_lane_enabled() -> bool:
    """Whether the hot-path specializations are on (default yes).

    ``REPRO_FAST_LANE=0`` forces every cache and core onto the generic
    path — the reference the fast lane is benchmarked and property-
    tested against.  Read at object construction, not import, so tests
    can toggle it per instance.
    """
    return os.environ.get("REPRO_FAST_LANE", "1") != "0"


class CacheStats:
    """Cumulative event counts of one cache."""

    __slots__ = ("hits", "misses", "fills", "evictions", "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def accesses(self) -> int:
        """Total probes observed (hits plus misses)."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Misses per probe; 0.0 for an untouched cache."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.invalidations = 0

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"fills={self.fills}, evictions={self.evictions}, "
            f"invalidations={self.invalidations})"
        )


class SetAssociativeCache:
    """One level of cache: ``num_sets`` sets of ``associativity`` ways.

    When the replacement policy is plain LRU (the default everywhere),
    ``probe`` and ``fill`` are rebound at construction to specialized
    variants that inline the policy's list operations, skipping the
    virtual dispatch through :class:`ReplacementPolicy` on every access.
    FIFO/Random/PLRU stay on the generic path.  Pass
    ``specialize=False`` (or set ``REPRO_FAST_LANE=0``) to force the
    generic path for benchmarking and equivalence tests.
    """

    def __init__(
        self,
        name: str,
        geometry: CacheGeometry,
        policy: ReplacementPolicy,
        specialize: bool | None = None,
    ):
        self.name = name
        self.geometry = geometry
        self.policy = policy
        self.stats = CacheStats()
        self._num_sets = geometry.num_sets
        self._set_mask = geometry.num_sets - 1
        self._assoc = geometry.associativity
        self._sets: list[list[int]] = [[] for _ in range(geometry.num_sets)]
        if specialize is None:
            specialize = fast_lane_enabled()
        #: whether re-touching the MRU line (list tail) is a policy
        #: no-op — the invariant the core's inlined L1-hit check needs
        self.hit_is_mru_noop = specialize and isinstance(
            policy, (LRUPolicy, FIFOPolicy, RandomPolicy)
        )
        if specialize and type(policy) is LRUPolicy:
            # Rebind the hot verbs on the instance; the class methods
            # remain the generic reference implementation.
            self.probe = self._probe_lru  # type: ignore[method-assign]
            self.fill = self._fill_lru  # type: ignore[method-assign]

    # -- hot path ------------------------------------------------------

    def probe(self, addr: int) -> bool:
        """Look up ``addr``; update recency state and hit/miss counters."""
        contents = self._sets[addr & self._set_mask]
        try:
            way = contents.index(addr)
        except ValueError:
            self.stats.misses += 1
            return False
        self.policy.on_hit(contents, way, addr & self._set_mask)
        self.stats.hits += 1
        return True

    def fill(self, addr: int) -> int | None:
        """Bring ``addr`` into the cache; return the evicted line, if any.

        Filling an already-resident line refreshes its recency instead of
        duplicating it (this arises when two cores fill the same shared
        line back-to-back).
        """
        set_index = addr & self._set_mask
        contents = self._sets[set_index]
        try:
            way = contents.index(addr)
        except ValueError:
            pass
        else:
            self.policy.on_hit(contents, way, set_index)
            return None
        victim: int | None = None
        if len(contents) >= self._assoc:
            victim_way = self.policy.victim_index(contents, set_index)
            victim = contents[victim_way]
            self.policy.on_invalidate(contents, victim_way, set_index)
            self.stats.evictions += 1
        self.policy.on_fill(contents, addr, set_index)
        self.stats.fills += 1
        return victim

    def _probe_lru(self, addr: int) -> bool:
        """LRU-inlined :meth:`probe`: move-to-tail without dispatch.

        Tests membership before ``list.index`` — raising ``ValueError``
        costs ~4x a C-level scan of an 8-entry set, and misses dominate
        the probes that reach this path (MRU hits are inlined upstream).
        """
        contents = self._sets[addr & self._set_mask]
        if addr not in contents:
            self.stats.misses += 1
            return False
        if contents[-1] != addr:
            contents.append(contents.pop(contents.index(addr)))
        self.stats.hits += 1
        return True

    def _fill_lru(self, addr: int) -> int | None:
        """LRU-inlined :meth:`fill`: victim is always the list head.

        Membership-first for the same reason as :meth:`_probe_lru`:
        nearly every fill inserts a line that is not yet resident.
        """
        contents = self._sets[addr & self._set_mask]
        if addr in contents:
            if contents[-1] != addr:
                contents.append(contents.pop(contents.index(addr)))
            return None
        victim: int | None = None
        if len(contents) >= self._assoc:
            victim = contents.pop(0)
            self.stats.evictions += 1
        contents.append(addr)
        self.stats.fills += 1
        return victim

    def invalidate(self, addr: int) -> bool:
        """Drop ``addr`` if resident; return whether it was present."""
        set_index = addr & self._set_mask
        contents = self._sets[set_index]
        try:
            way = contents.index(addr)
        except ValueError:
            return False
        self.policy.on_invalidate(contents, way, set_index)
        self.stats.invalidations += 1
        return True

    # -- inspection ----------------------------------------------------

    def contains(self, addr: int) -> bool:
        """Membership test with no side effects (for tests/assertions)."""
        return addr in self._sets[addr & self._set_mask]

    def set_contents(self, set_index: int) -> tuple[int, ...]:
        """Snapshot of one set's resident lines (policy order)."""
        return tuple(self._sets[set_index])

    def resident_lines(self) -> set[int]:
        """All line addresses currently resident (for invariant checks)."""
        resident: set[int] = set()
        for contents in self._sets:
            resident.update(contents)
        return resident

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(contents) for contents in self._sets)

    @property
    def capacity_lines(self) -> int:
        """Total line capacity, from the geometry."""
        return self.geometry.capacity_lines

    def flush(self) -> None:
        """Empty the cache (keeps statistics)."""
        for contents in self._sets:
            contents.clear()

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache({self.name!r}, sets={self._num_sets}, "
            f"ways={self._assoc}, occupancy={self.occupancy})"
        )
