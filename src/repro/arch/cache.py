"""A set-associative cache operating on line addresses.

Addresses throughout the library are *cache line numbers* (integers);
byte offsets within a line never matter to the contention phenomena the
paper studies, so they are not modelled.  The set index is the low bits
of the line number, exactly as on real hardware where the line number is
the byte address shifted right by ``log2(line_bytes)``.

The cache does not fetch on miss by itself — miss handling (walking the
hierarchy, filling lines on the way back) is the job of
:class:`repro.arch.hierarchy.CacheHierarchy`.  This keeps the cache a
pure container with three verbs: :meth:`probe`, :meth:`fill`,
:meth:`invalidate`.
"""

from __future__ import annotations

import os
from array import array

import numpy as np

from ..config import CacheGeometry
from .replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
)


def fast_lane_enabled() -> bool:
    """Whether the hot-path specializations are on (default yes).

    ``REPRO_FAST_LANE=0`` forces every cache and core onto the generic
    path — the reference the fast lane is benchmarked and property-
    tested against.  Read at object construction, not import, so tests
    can toggle it per instance.
    """
    return os.environ.get("REPRO_FAST_LANE", "1") != "0"


def bulk_kernel_enabled() -> bool:
    """Whether the bulk-kernel tier is on (default yes).

    ``REPRO_BULK_KERNEL=0`` disables both halves of the bulk tier —
    the flat-array set storage *and* the batched
    :meth:`repro.arch.hierarchy.CacheHierarchy.access_many` walks that
    are inlined against it — leaving exactly the first-generation fast
    lane (list-based LRU specializations, scalar walks).  That is how
    ``bench_simspeed`` isolates the kernel's contribution from the
    scalar fast lane's.  Only meaningful while the fast lane itself is
    enabled; like it, the flag is read at object construction.
    """
    return os.environ.get("REPRO_BULK_KERNEL", "1") != "0"


def vector_kernel_enabled() -> bool:
    """Whether the vectorized (tier-4) kernel is on (default yes).

    ``REPRO_VECTOR_KERNEL=0`` disables the numpy vector path — both the
    ``array('q')``-backed flat storage (with its zero-copy numpy views)
    and the batched
    :meth:`repro.arch.hierarchy.CacheHierarchy.access_many_vector`
    walks — leaving exactly the PR5 bulk kernel (list-backed flat
    arrays, scalar inlined walks).  That is how ``bench_simspeed``
    isolates the vector tier's contribution from the bulk kernel's.
    Only meaningful while the bulk kernel itself is enabled; like the
    other gates, the flag is read at object construction.
    """
    return os.environ.get("REPRO_VECTOR_KERNEL", "1") != "0"


def owner_arrays_enabled() -> bool:
    """Whether the array-backed L3 ownership store is on (default yes).

    ``REPRO_OWNER_ARRAYS=0`` reverts the hierarchy to the dict-of-sets
    owner map — the reference tier the bitmask column is proven
    bit-identical against by the differential suite, and the
    configuration ``bench_simspeed`` uses to rebuild the PR-6 vector
    tier.  Only meaningful on a flat, inclusive L3 (see
    ``CacheHierarchy._owner_arrays`` for the full predicate); like the
    other gates, the flag is read at object construction.
    """
    return os.environ.get("REPRO_OWNER_ARRAYS", "1") != "0"


def vector_fills_enabled() -> bool:
    """Whether the batched private-level fill verb is on (default yes).

    ``REPRO_VECTOR_FILLS=0`` keeps the mid-size private fills on the
    scalar loop (and the vector tier's stand-down threshold at its
    PR-6 value), which together with ``REPRO_OWNER_ARRAYS=0`` rebuilds
    the PR-6 vector tier exactly — the baseline of the ownership
    gates in ``bench_simspeed``.  Read at object construction.
    """
    return os.environ.get("REPRO_VECTOR_FILLS", "1") != "0"


def debug_invariants_enabled() -> bool:
    """Whether the opt-in ownership invariant checks are armed.

    ``REPRO_DEBUG_INVARIANTS=1`` makes the hierarchy assert, after
    every batch, that the active ownership store (dict or bitmask
    column) agrees with the L3 resident set and that the per-core
    occupancy vector equals the per-core owner-bit counts — the
    self-check the differential suite drives.  Off by default: the
    check walks the whole L3.  Read at object construction.
    """
    return os.environ.get("REPRO_DEBUG_INVARIANTS", "0") != "0"


#: Sentinel tag for an unoccupied flat-array slot.  Line addresses are
#: non-negative, so the sentinel can never collide with a real line.
_EMPTY = -1


class CacheStats:
    """Cumulative event counts of one cache."""

    __slots__ = ("hits", "misses", "fills", "evictions", "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def accesses(self) -> int:
        """Total probes observed (hits plus misses)."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Misses per probe; 0.0 for an untouched cache."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.invalidations = 0

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"fills={self.fills}, evictions={self.evictions}, "
            f"invalidations={self.invalidations})"
        )


class SetAssociativeCache:
    """One level of cache: ``num_sets`` sets of ``associativity`` ways.

    When the replacement policy is plain LRU (the default everywhere),
    set contents are stored in one preallocated *flat* tag array of
    ``num_sets * associativity`` slots, and ``probe``/``fill``/
    ``invalidate`` are rebound at construction to specialized variants
    operating directly on that array — no per-set list objects to
    grow/shrink on fills/evictions and no virtual dispatch through
    :class:`ReplacementPolicy` on any access.  Three side structures
    keep every hot operation O(1) or a single C-level shift:

    * ``_resident`` — one set of all resident line addresses, making
      the miss verdict a hash probe instead of a scan;
    * ``_heads`` — a per-set rotation index turning a full set into a
      circular window, so the evict-and-insert of a streaming miss
      rewrites one slot instead of shifting the whole set;
    * ``_mru`` — a per-set MRU tag shadow answering re-touches in two
      loads.

    Logical LRU order (LRU first) is always reconstructable, so
    :meth:`set_contents` stays comparable 1:1 with the generic path.
    The flat layout is also what
    :meth:`repro.arch.hierarchy.CacheHierarchy.access_many` inlines.
    FIFO/Random/PLRU stay on the generic list-of-lists path.  Pass
    ``specialize=False`` (or set ``REPRO_FAST_LANE=0``) to force the
    generic path for benchmarking and equivalence tests.
    """

    def __init__(
        self,
        name: str,
        geometry: CacheGeometry,
        policy: ReplacementPolicy,
        specialize: bool | None = None,
        vector_storage: bool = False,
    ):
        self.name = name
        self.geometry = geometry
        self.policy = policy
        self.stats = CacheStats()
        self._num_sets = geometry.num_sets
        self._set_mask = geometry.num_sets - 1
        self._assoc = geometry.associativity
        #: Monotone upper bound on every line ever filled (never
        #: lowered by evictions).  The vector classifier proves
        #: batch-vs-resident disjointness with one comparison when a
        #: monotone address stream has moved past this bound;
        #: conservatively high values only cost that fast path, never
        #: correctness.  Maintained by the flat fill verb, by
        #: ``access_many``'s batched fills, and by the vector commit.
        self._max_tag = -1
        if specialize is None:
            specialize = fast_lane_enabled()
        #: whether re-touching the MRU line (list tail) is a policy
        #: no-op — the invariant the core's inlined L1-hit check needs
        self.hit_is_mru_noop = specialize and isinstance(
            policy, (LRUPolicy, FIFOPolicy, RandomPolicy)
        )
        #: whether this cache uses the flat-array LRU storage (the
        #: representation the bulk-access kernel requires); with
        #: ``REPRO_BULK_KERNEL=0`` plain-LRU caches fall back to the
        #: first-generation list-based specializations instead
        self._flat = (
            specialize
            and policy.flat_lru_compatible
            and bulk_kernel_enabled()
        )
        #: whether the flat arrays are ``array('q')``-backed with
        #: zero-copy numpy views — the representation the vector
        #: kernel scatters/gathers against.  Opt-in per cache
        #: (``vector_storage=True``): the hierarchy requests it only
        #: for the shared L3, whose capacity is large enough for numpy
        #: to win; the small private levels stay plain lists so the
        #: scalar tiers never pay ``array('q')`` int boxing on reads.
        #: Off everywhere when ``REPRO_VECTOR_KERNEL=0`` so the
        #: bulk-kernel tier benches exactly as shipped in PR5.
        self._vector = (
            self._flat and vector_storage and vector_kernel_enabled()
        )
        #: Optional per-slot owner bitmask column, parallel to
        #: ``_tags`` (bit ``c`` set = core ``c`` owns the line in that
        #: slot).  Allocated by :meth:`attach_owner_column` — the
        #: hierarchy requests it for the shared L3 only, when the
        #: array-backed ownership store is active.  Every permutation
        #: of the tag array (move-to-tail shifts, invalidation
        #: compaction, the kernels' batched updates) must mirror it.
        self._owner_tags: "array | list[int] | None" = None
        self._sets: list[list[int]] | None
        if self._flat:
            # Flat storage: each set owns the slot range
            # [set*assoc, (set+1)*assoc).  While a set is not full its
            # head is 0 and slots base..base+fill-1 run LRU -> MRU;
            # once full, logical position p lives at physical slot
            # base + (head + p) % assoc, i.e. the set is a circular
            # window whose LRU sits at the head slot.
            nslots = self._num_sets * self._assoc
            if self._vector:
                # array('q') keeps the scalar verbs' list-like item
                # and slice semantics while letting the vector kernel
                # operate on writable zero-copy numpy views (created
                # per batch by :meth:`_vector_views` — never stored:
                # a live view keeps the buffer exported, and the array
                # module then refuses even size-preserving slice
                # assignments, which the scalar verbs rely on).
                self._tags = array("q", [_EMPTY]) * nslots
                self._fill_counts = array("q", bytes(8 * self._num_sets))
                self._heads = array("q", bytes(8 * self._num_sets))
            else:
                self._tags = [_EMPTY] * nslots
                self._fill_counts = [0] * self._num_sets
                self._heads = [0] * self._num_sets
            # Shadow of each set's MRU tag, letting the hottest checks
            # skip the slot arithmetic entirely.  Deliberately a plain
            # list even in vector mode: line addresses are large ints,
            # and an ``array('q')`` read would box a fresh object on
            # every probe's MRU compare — the scalar fallback's hottest
            # load.  The vector kernel writes it back in per-set-sized
            # strokes instead of through a view.
            self._mru = [_EMPTY] * self._num_sets
            # All resident lines: the miss verdict in one hash probe.
            # A line maps to exactly one set, so cache-wide membership
            # equals set membership.
            self._resident: set[int] = set()
            self._sets = None
            self.probe = self._probe_lru  # type: ignore[method-assign]
            self.fill = self._fill_lru  # type: ignore[method-assign]
            self.invalidate = (  # type: ignore[method-assign]
                self._invalidate_lru
            )
        else:
            self._sets = [[] for _ in range(geometry.num_sets)]
            if specialize and policy.flat_lru_compatible:
                # Bulk tier off: the first-generation list-based LRU
                # specializations (no flat arrays, scalar walks only).
                self.probe = (  # type: ignore[method-assign]
                    self._probe_lru_list
                )
                self.fill = (  # type: ignore[method-assign]
                    self._fill_lru_list
                )

    def attach_owner_column(self) -> None:
        """Allocate the per-slot owner bitmask column (flat caches only).

        The container type matches ``_tags`` so the scalar verbs mirror
        it with the same slice operations, and the vector kernel gets a
        zero-copy numpy view (:meth:`_owner_view`) when the storage is
        ``array('q')``-backed.  Idempotent.
        """
        if not self._flat:
            raise ValueError(
                f"{self.name}: owner column requires flat LRU storage"
            )
        if self._owner_tags is not None:
            return
        nslots = self._num_sets * self._assoc
        if self._vector:
            self._owner_tags = array("q", bytes(8 * nslots))
        else:
            self._owner_tags = [0] * nslots

    def _owner_view(self) -> np.ndarray:
        """Fresh zero-copy int64 view of the owner column.

        Same lifetime contract as :meth:`_vector_views`: drop the view
        before any scalar verb performs a slice assignment on the
        backing ``array('q')``.
        """
        return np.frombuffer(self._owner_tags, dtype=np.int64)

    # -- hot path ------------------------------------------------------

    def probe(self, addr: int) -> bool:
        """Look up ``addr``; update recency state and hit/miss counters."""
        contents = self._sets[addr & self._set_mask]
        try:
            way = contents.index(addr)
        except ValueError:
            self.stats.misses += 1
            return False
        self.policy.on_hit(contents, way, addr & self._set_mask)
        self.stats.hits += 1
        return True

    def fill(self, addr: int) -> int | None:
        """Bring ``addr`` into the cache; return the evicted line, if any.

        Filling an already-resident line refreshes its recency instead of
        duplicating it (this arises when two cores fill the same shared
        line back-to-back).
        """
        set_index = addr & self._set_mask
        contents = self._sets[set_index]
        try:
            way = contents.index(addr)
        except ValueError:
            pass
        else:
            self.policy.on_hit(contents, way, set_index)
            return None
        victim: int | None = None
        if len(contents) >= self._assoc:
            victim_way = self.policy.victim_index(contents, set_index)
            victim = contents[victim_way]
            self.policy.on_invalidate(contents, victim_way, set_index)
            self.stats.evictions += 1
        self.policy.on_fill(contents, addr, set_index)
        self.stats.fills += 1
        return victim

    def _probe_lru_list(self, addr: int) -> bool:
        """LRU-inlined :meth:`probe` on per-set lists (the PR1 tier).

        Tests membership before ``list.index`` — raising ``ValueError``
        costs ~4x a C-level scan of an 8-entry set, and misses dominate
        the probes that reach this path (MRU hits are inlined upstream).
        """
        contents = self._sets[addr & self._set_mask]
        if addr not in contents:
            self.stats.misses += 1
            return False
        if contents[-1] != addr:
            contents.append(contents.pop(contents.index(addr)))
        self.stats.hits += 1
        return True

    def _fill_lru_list(self, addr: int) -> int | None:
        """LRU-inlined :meth:`fill` on per-set lists (the PR1 tier).

        Membership-first for the same reason as :meth:`_probe_lru_list`:
        nearly every fill inserts a line that is not yet resident.
        """
        contents = self._sets[addr & self._set_mask]
        if addr in contents:
            if contents[-1] != addr:
                contents.append(contents.pop(contents.index(addr)))
            return None
        victim: int | None = None
        if len(contents) >= self._assoc:
            victim = contents.pop(0)
            self.stats.evictions += 1
        contents.append(addr)
        self.stats.fills += 1
        return victim

    def _move_to_tail(self, si: int, addr: int) -> None:
        """Make resident ``addr`` the logical MRU of set ``si``.

        Callers guarantee residency, so ``list.index`` cannot raise.
        In a full rotated set the logical window may wrap the physical
        slot range, in which case the shift is two slice moves plus the
        boundary element.
        """
        tags = self._tags
        assoc = self._assoc
        base = si * assoc
        fill = self._fill_counts[si]
        ot = self._owner_tags
        if fill < assoc:  # head == 0: contiguous, physical == logical
            top = base + fill
            way = tags.index(addr, base, top)
            if ot is not None:
                ob = ot[way]
                ot[way:top - 1] = ot[way + 1:top]
                ot[top - 1] = ob
            tags[way:top - 1] = tags[way + 1:top]
            tags[top - 1] = addr
        else:
            head = self._heads[si]
            way = tags.index(addr, base, base + assoc)
            tail = base + (head - 1 if head else assoc - 1)
            if way <= tail:
                if ot is not None:
                    ob = ot[way]
                    ot[way:tail] = ot[way + 1:tail + 1]
                    ot[tail] = ob
                tags[way:tail] = tags[way + 1:tail + 1]
                tags[tail] = addr
            else:
                end = base + assoc - 1
                if ot is not None:
                    ob = ot[way]
                    ot[way:end] = ot[way + 1:end + 1]
                    ot[end] = ot[base]
                    ot[base:tail] = ot[base + 1:tail + 1]
                    ot[tail] = ob
                tags[way:end] = tags[way + 1:end + 1]
                tags[end] = tags[base]
                tags[base:tail] = tags[base + 1:tail + 1]
                tags[tail] = addr
        self._mru[si] = addr

    def _probe_lru(self, addr: int) -> bool:
        """LRU-flat :meth:`probe`.

        The MRU shadow answers the dominant re-touch case in two loads;
        the resident set answers the miss verdict in one hash probe.
        Only a non-MRU hit pays for the move-to-tail shift.
        """
        si = addr & self._set_mask
        if self._mru[si] == addr:
            self.stats.hits += 1
            return True
        if addr not in self._resident:
            self.stats.misses += 1
            return False
        self._move_to_tail(si, addr)
        self.stats.hits += 1
        return True

    def _fill_lru(self, addr: int) -> int | None:
        """LRU-flat :meth:`fill`: O(1) evict-and-insert at the head slot.

        A full set is a circular window, so the streaming-miss fill —
        evict the LRU, insert the new line as MRU — rewrites exactly
        one slot and advances the head, with no shifting at all.
        """
        si = addr & self._set_mask
        if self._mru[si] == addr:
            return None
        resident = self._resident
        if addr in resident:
            self._move_to_tail(si, addr)
            return None
        assoc = self._assoc
        base = si * assoc
        fill = self._fill_counts[si]
        victim: int | None = None
        if fill >= assoc:
            heads = self._heads
            head = heads[si]
            slot = base + head
            victim = self._tags[slot]
            self._tags[slot] = addr
            heads[si] = head + 1 if head + 1 < assoc else 0
            resident.discard(victim)
            self.stats.evictions += 1
        else:
            self._tags[base + fill] = addr
            self._fill_counts[si] = fill + 1
        resident.add(addr)
        if addr > self._max_tag:
            self._max_tag = addr
        self._mru[si] = addr
        self.stats.fills += 1
        return victim

    def _invalidate_lru(self, addr: int) -> bool:
        """LRU-flat :meth:`invalidate`: compact the set back to head 0.

        Invalidations are orders of magnitude rarer than probes/fills
        (inclusive-L3 back-invalidations only), so the non-resident
        verdict is the fast path and removal may de-rotate the window.
        """
        resident = self._resident
        if addr not in resident:
            return False
        resident.discard(addr)
        si = addr & self._set_mask
        assoc = self._assoc
        base = si * assoc
        fill = self._fill_counts[si]
        tags = self._tags
        head = self._heads[si]
        ot = self._owner_tags
        if fill >= assoc and head:
            # De-rotate into logical order, drop addr, store contiguous.
            order = tags[base + head:base + assoc] + tags[base:base + head]
            way = order.index(addr)
            del order[way]
            order.append(_EMPTY)
            if ot is not None:
                oorder = (ot[base + head:base + assoc]
                          + ot[base:base + head])
                del oorder[way]
                oorder.append(0)
                ot[base:base + assoc] = oorder
            tags[base:base + assoc] = order
            self._heads[si] = 0
        else:
            top = base + fill
            way = tags.index(addr, base, top)
            if ot is not None:
                ot[way:top - 1] = ot[way + 1:top]
                ot[top - 1] = 0
            tags[way:top - 1] = tags[way + 1:top]
            tags[top - 1] = _EMPTY
        fill -= 1
        self._fill_counts[si] = fill
        self._mru[si] = tags[base + fill - 1] if fill else _EMPTY
        self.stats.invalidations += 1
        return True

    def invalidate(self, addr: int) -> bool:
        """Drop ``addr`` if resident; return whether it was present."""
        set_index = addr & self._set_mask
        contents = self._sets[set_index]
        try:
            way = contents.index(addr)
        except ValueError:
            return False
        self.policy.on_invalidate(contents, way, set_index)
        self.stats.invalidations += 1
        return True

    def _vector_views(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fresh zero-copy numpy views of the flat arrays.

        ``(tags, fill_counts, heads)``, each a writable int64 view
        over the backing ``array('q')`` — mutations are visible both
        ways.  Views are created per batch and must be dropped right
        after: while one lives, the backing array "exports a buffer"
        and CPython's array module then refuses the (size-preserving)
        slice assignments the scalar verbs perform.  The MRU shadow is
        a plain list (see ``__init__``) and is updated directly.
        """
        return (
            np.frombuffer(self._tags, dtype=np.int64),
            np.frombuffer(self._fill_counts, dtype=np.int64),
            np.frombuffer(self._heads, dtype=np.int64),
        )

    # -- inspection ----------------------------------------------------

    def contains(self, addr: int) -> bool:
        """Membership test with no side effects (for tests/assertions)."""
        if self._flat:
            return addr in self._resident
        return addr in self._sets[addr & self._set_mask]

    def set_contents(self, set_index: int) -> tuple[int, ...]:
        """Snapshot of one set's resident lines (policy order)."""
        if self._flat:
            assoc = self._assoc
            base = set_index * assoc
            fill = self._fill_counts[set_index]
            head = self._heads[set_index]
            if fill >= assoc and head:
                return tuple(
                    self._tags[base + head:base + assoc]
                    + self._tags[base:base + head]
                )
            return tuple(self._tags[base:base + fill])
        return tuple(self._sets[set_index])

    def resident_lines(self) -> set[int]:
        """All line addresses currently resident (for invariant checks)."""
        if self._flat:
            return set(self._resident)
        resident: set[int] = set()
        for contents in self._sets:
            resident.update(contents)
        return resident

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently held."""
        if self._flat:
            return sum(self._fill_counts)
        return sum(len(contents) for contents in self._sets)

    @property
    def capacity_lines(self) -> int:
        """Total line capacity, from the geometry."""
        return self.geometry.capacity_lines

    def flush(self) -> None:
        """Empty the cache (keeps statistics)."""
        if self._flat:
            if self._vector:
                self._tags[:] = array("q", [_EMPTY]) * len(self._tags)
                self._fill_counts[:] = array(
                    "q", bytes(8 * self._num_sets)
                )
                self._heads[:] = array("q", bytes(8 * self._num_sets))
                self._mru[:] = [_EMPTY] * self._num_sets
                if self._owner_tags is not None:
                    self._owner_tags[:] = array(
                        "q", bytes(8 * len(self._owner_tags))
                    )
            else:
                n = len(self._tags)
                self._tags[:] = [_EMPTY] * n
                self._fill_counts[:] = [0] * self._num_sets
                self._heads[:] = [0] * self._num_sets
                self._mru[:] = [_EMPTY] * self._num_sets
                if self._owner_tags is not None:
                    self._owner_tags[:] = [0] * n
            self._resident.clear()
            return
        for contents in self._sets:
            contents.clear()

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache({self.name!r}, sets={self._num_sets}, "
            f"ways={self._assoc}, occupancy={self.occupancy})"
        )
