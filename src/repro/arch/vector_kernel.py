"""Tier-4 vectorized bulk-access kernel.

The PR5 bulk kernel (:meth:`repro.arch.hierarchy.CacheHierarchy.
access_many`) already batches whole address chunks through inlined
flat-array LRU walks, but still pays interpreted Python per address —
and, because it mutates as it walks, the core must size its batches so
even all-worst-case costs cannot cross the cycle budget, which caps
them at a few hundred addresses and leaves little to amortise.

This module removes both costs by splitting the walk in two:

:func:`classify`
    proves, without touching any state, that the batch belongs to the
    *uniform private-miss* class: a leading run of the L1 MRU line
    (the batch boundary may split a repeat run of the previous batch)
    is a guaranteed hit; consecutive duplicates collapse to one walk
    plus guaranteed L1 hits (exactly the scalar kernel's run
    handling); and the collapsed stream must be all-distinct and
    absent from this core's L1 and L2.  Every collapsed access then
    misses both private levels, and its serving level — 3 if the line
    sits in the shared L3, 4 if not — follows from a vectorized tag
    probe.  The per-address cycle costs are therefore known *before*
    anything is updated, which lets the core take large batches, find
    the exact cycle-budget cutoff, and push the unexecuted suffix back
    untouched.  Returns ``None`` (revisits, private-resident lines);
    the caller falls back to the scalar kernel, the same ladder
    ``bulk_kernel_ok`` uses one tier down.

:func:`commit`
    applies the updates for the executed prefix.  The private L1/L2
    fills are identical for level-3 and level-4 accesses (both missed
    there), so each is one order-preserving bulk fill over the
    ``array('q')``-backed tag arrays: per set, the first ``max(0,
    fill + k - assoc)`` evictions pop pre-batch lines from the LRU
    head of the circular window, and the last ``min(k, assoc)``
    inserted lines survive in insertion order at the MRU end — which
    the closed-form slot formula ``base + (head + fill + occurrence)
    % assoc`` scatters in one fancy-indexing pass.  A *consecutive*
    collapsed run (the streaming steady state) skips even the
    argsort-based set grouping: element ``i`` of a consecutive run is
    its set's ``i // num_sets``-th insertion, so every per-set
    quantity reduces to positional arithmetic.  The shared L3
    partitions by set into three strata: sets receiving only misses
    use the bulk fill; sets receiving exactly one access, a hit, get
    a vectorized move-to-tail rotation; the rare sets mixing hits and
    misses (or taking several hits) are replayed sequentially on
    extracted copies, which both *validates* the predicted hit levels
    (an earlier in-batch fill could have evicted a predicted-hit
    line) and yields the exact final window.  Nothing is mutated
    until every stratum validates, no L3 set receives more lines than
    it has ways (so every L3 victim is a pre-batch line with an exact
    owner record), and — on an inclusive L3 — no victim lives in this
    core's own L1/L2.  On any failure ``commit`` returns ``False``
    with no state mutated and the caller re-routes the untouched
    batch through the scalar kernel.  Owner records and counter/stat
    deltas are flushed once per batch: when every evicted line was
    solely ours, the popped ``{core}`` singletons are recycled as the
    owner records of the newly inserted lines — the same object reuse
    the scalar walk performs one line at a time.
"""

from __future__ import annotations

from itertools import repeat as _it_repeat

import numpy as np

__all__ = ["classify", "commit"]

_EMPTY_I64 = np.empty(0, dtype=np.int64)

#: Shared 0..n-1 scratch, grown on demand (batches are a few thousand).
_AR_CACHE = np.arange(8192, dtype=np.int64)


def _ar(n: int) -> np.ndarray:
    global _AR_CACHE
    if n > _AR_CACHE.shape[0]:
        _AR_CACHE = np.arange(max(n, 2 * _AR_CACHE.shape[0]),
                              dtype=np.int64)
    return _AR_CACHE[:n]


class BatchPlan:
    """The no-mutation classification of one address batch."""

    __slots__ = ("addrs", "levels", "keep_raw", "c", "hit", "consec",
                 "c_list")

    def __init__(self, addrs, levels, keep_raw, c, hit, consec,
                 c_list=None):
        self.addrs = addrs
        #: per-address serving level (1, 3 or 4).  Exact for any
        #: executed prefix :func:`commit` accepts: miss predictions
        #: are unconditional (distinct + absent lines stay absent),
        #: and hit predictions are validated during commit.
        self.levels = levels
        #: raw batch positions of the collapsed (walking) accesses
        self.keep_raw = keep_raw
        #: the collapsed stream itself (distinct, L1/L2-absent)
        self.c = c
        #: per-collapsed-access predicted L3 residency; ``None`` when
        #: the whole stream misses the L3 (the streaming fast path)
        self.hit = hit
        #: the collapsed stream is consecutive ascending (c[i]=c[0]+i)
        self.consec = consec
        #: ``c`` as a Python list when classification already paid the
        #: conversion (a membership scan); lets commit skip its own
        self.c_list = c_list


def classify(hierarchy, core: int, addrs: np.ndarray):
    """Prove the batch uniform and return its :class:`BatchPlan`.

    Pure read.  Returns ``None`` when the batch is not provably in the
    uniform private-miss class, in which case the caller must run it
    through the scalar kernel.
    """
    n = addrs.shape[0]
    l1 = hierarchy.l1[core]
    levels = np.ones(n, dtype=np.int64)
    lead = 0
    a0 = int(addrs[0])
    if l1._mru[a0 & l1._set_mask] == a0:
        # The previous batch ended mid-repeat-run: its line is this
        # core's L1 MRU, so the leading repeats are guaranteed hits.
        neq = np.nonzero(addrs != a0)[0]
        lead = int(neq[0]) if neq.size else n
        if lead == n:
            return BatchPlan(addrs, levels, _EMPTY_I64, _EMPTY_I64,
                             None, False)
    work = addrs[lead:]
    keep = np.empty(work.shape[0], dtype=bool)
    keep[0] = True
    np.not_equal(work[1:], work[:-1], out=keep[1:])
    keep_raw = lead + np.nonzero(keep)[0]
    c = addrs[keep_raw]
    m = c.shape[0]
    consec = False
    asc = m == 1
    if m > 1:
        # Revisits inside the batch would hit lines the batch itself
        # filled; the sequential order then matters and the scalar
        # kernel must run.  Ascending streams settle this in one pass
        # (and an ascending distinct run is consecutive exactly when
        # it spans m lines).
        if (c[1:] > c[:-1]).all():
            asc = True
            consec = int(c[-1]) - int(c[0]) == m - 1
        else:
            s = np.sort(c)
            if (s[1:] == s[:-1]).any():
                return None
    lo = int(c[0]) if asc else int(c.min())
    c_list = None
    l2 = hierarchy.l2[core]
    # A monotone stream moves past every line it ever filled, so one
    # comparison against the cache's fill bound proves disjointness
    # without hashing the batch (see SetAssociativeCache._max_tag).
    if l1._max_tag >= lo:
        c_list = c.tolist()
        if not l1._resident.isdisjoint(c_list):
            return None
    if l2._max_tag >= lo:
        if c_list is None:
            c_list = c.tolist()
        if not l2._resident.isdisjoint(c_list):
            return None
    l3 = hierarchy.l3
    l3_absent = l3._max_tag < lo
    if not l3_absent:
        if c_list is None:
            c_list = c.tolist()
        l3_absent = l3._resident.isdisjoint(c_list)
    if l3_absent:
        levels[keep_raw] = 4
        return BatchPlan(addrs, levels, keep_raw, c, None, consec,
                         c_list)
    # Some lines sit in the shared L3: predict hit levels with a
    # masked tag probe (slots past a partial set's fill are stale).
    a = l3._assoc
    si = c & l3._set_mask
    tags_np, fill_np, _heads_np = l3._vector_views()
    rows = tags_np.reshape(-1, a)[si]
    ways = _ar(a)
    hit = ((rows == c[:, None])
           & (ways[None, :] < fill_np[si][:, None])).any(axis=1)
    levels[keep_raw] = np.where(hit, 3, 4)
    return BatchPlan(addrs, levels, keep_raw, c, hit, False, c_list)


def _plan_fill_g(cache, c: np.ndarray, views):
    """Plan one level's bulk fill of miss stream ``c`` (no mutation).

    The general, argsort-grouped form.  Returns ``(cs, u, f, h,
    counts, starts, slots, surv_mask, victims, total, evictions,
    vslots)`` where ``cs`` are the accesses stably sorted by set (so
    each set's insertions keep batch order), ``slots`` each
    insertion's physical slot, ``surv_mask`` the insertions still
    resident at batch end (``None`` means all survive), ``victims``
    the pre-batch lines evicted, and ``vslots`` the slots those
    victims occupied (where the owner-bitmask tier finds their masks).
    """
    tags_np, fill_np, heads_np = views
    a = cache._assoc
    si = c & cache._set_mask
    order = si.argsort(kind="stable")
    ss = si[order]
    cs = c[order]
    nn = ss.shape[0]
    first = np.empty(nn, dtype=bool)
    first[0] = True
    np.not_equal(ss[1:], ss[:-1], out=first[1:])
    starts = np.nonzero(first)[0]
    u = ss[starts]
    g = starts.shape[0]
    counts = np.empty(g, dtype=np.int64)
    np.subtract(starts[1:], starts[:-1], out=counts[:g - 1])
    counts[g - 1] = nn - starts[g - 1]
    # Occurrence rank of each insertion within its set's sub-stream.
    occ = _ar(nn) - np.repeat(starts, counts)
    f = fill_np[u]
    h = heads_np[u]
    occf = np.repeat(f, counts) + occ
    # Insertion ``occ`` of a set lands at the circular-window slot the
    # sequential evolution would use: the window advances one slot per
    # evict-and-insert, so slot = base + (head + fill + occ) % assoc.
    slots = ss * a + (np.repeat(h, counts) + occf) % a
    # Pre-batch victims: insertions that overwrite an occupied slot
    # (fill + occ >= assoc) before the window laps itself (occ <
    # assoc).  Later overwrites (occ >= assoc) evict lines inserted by
    # this very batch, which never reach the resident set.
    victim_mask = (occf >= a) & (occ < a)
    vslots = slots[victim_mask]
    victims = tags_np[vslots]
    total = f + counts
    if int(counts[counts.argmax()]) <= a:
        # Every insertion survives the batch (the committed-L3 case).
        surv_mask = None
    else:
        surv_mask = occ >= (np.repeat(counts, counts) - a)
    evictions = int(np.maximum(0, total - a).sum())
    return cs, u, f, h, counts, starts, slots, surv_mask, victims, \
        total, evictions, vslots


def _apply_fill_g(cache, plan, views) -> int:
    """Commit a :func:`_plan_fill_g` plan; return the eviction delta."""
    cs, u, f, h, counts, starts, slots, surv_mask, victims, total, \
        evictions, _vslots = plan
    tags_np, fill_np, heads_np = views
    a = cache._assoc
    if surv_mask is None:
        surv = cs
        tags_np[slots] = cs
    else:
        surv = cs[surv_mask]
        tags_np[slots[surv_mask]] = surv
    # A set that wrapped keeps rotating (head advances once per
    # eviction); one that stayed partial keeps the head-0 invariant.
    heads_np[u] = np.where(total >= a, (h + total) % a, 0)
    fill_np[u] = np.minimum(a, total)
    mru = cache._mru
    for s, addr in zip(u.tolist(), cs[starts + counts - 1].tolist()):
        mru[s] = addr
    resident = cache._resident
    resident.difference_update(victims.tolist())
    resident.update(surv.tolist())
    return evictions


def _fill_replace_py(cache, c_list: list, m: int) -> int:
    """Full-replacement fill of a private level by a consecutive run.

    Requires ``m >= num_sets * assoc``: every set then receives at
    least ``assoc`` insertions, so every pre-batch line is evicted and
    the survivors are exactly the last ``num_sets * assoc`` elements
    (any window of that many consecutive elements holds exactly
    ``assoc`` per set).  Only the surviving tail is written — ``m``
    can be arbitrarily large, the work is bounded by the capacity.
    Scalar on purpose: the private levels are list-backed and small,
    so item writes beat numpy's per-ufunc dispatch overhead.
    """
    a = cache._assoc
    nsets = cache._num_sets
    mask = cache._set_mask
    cap = nsets * a
    tags = cache._tags
    fills = cache._fill_counts
    heads = cache._heads
    mru = cache._mru
    c0 = c_list[0]
    evictions = sum(fills) + m - cap
    tail = c_list[m - cap:]
    i = m - cap
    for addr in tail:
        s = addr & mask
        tags[s * a + (heads[s] + fills[s] + i // nsets) % a] = addr
        i += 1
    kbase = m // nsets
    rem = m - kbase * nsets
    for s in range(nsets):
        k = kbase + 1 if (s - c0) % nsets < rem else kbase
        total = fills[s] + k
        heads[s] = (heads[s] + total) % a
        fills[s] = a
        mru[s] = c_list[(s - c0) % nsets + (k - 1) * nsets]
    resident = cache._resident
    resident.clear()
    resident.update(tail)
    return evictions


def _fill_scalar(cache, miss_list: list) -> int:
    """Fill a private level with a distinct all-miss stream, scalar.

    The general private-level fill verb: classify proved every element
    absent, so this is the bulk kernel's inlined fill loop without the
    probes.  Bounded by the batch length, which for the non-consecutive
    cases that reach it is at most one budget's worth of accesses —
    small enough that a Python loop over list storage beats the numpy
    plan/apply machinery and its dispatch overhead.  Returns the
    eviction delta.
    """
    a = cache._assoc
    mask = cache._set_mask
    tags = cache._tags
    fills = cache._fill_counts
    heads = cache._heads
    mru = cache._mru
    res_add = cache._resident.add
    res_discard = cache._resident.discard
    evictions = 0
    for addr in miss_list:
        si = addr & mask
        fill = fills[si]
        if fill >= a:
            head = heads[si]
            slot = si * a + head
            res_discard(tags[slot])
            tags[slot] = addr
            heads[si] = head + 1 if head + 1 < a else 0
            evictions += 1
        else:
            tags[si * a + fill] = addr
            fills[si] = fill + 1
        mru[si] = addr
        res_add(addr)
    return evictions


#: Minimum collapsed-stream length for the batched private fill: below
#: this the grouped per-set slice updates lose to the scalar loop
#: (tuned on the pointer-chase shape; see bench_simspeed).  The verb
#: owns the window up to ``2 * capacity`` where :func:`_fill_dense`
#: takes over.
_FILL_BATCH_MIN = 384


def _fill_batch(cache, c: np.ndarray, miss_list: list, m: int) -> int:
    """Batched index-math twin of :func:`_fill_scalar`.

    The private-level gap between :func:`_fill_dense` (wants ``m >=
    2 * capacity``) and the scalar loop: the chase shapes collapse to
    a few hundred distinct misses per batch — too short to replace the
    whole level, long enough that per-address Python costs dominate.
    Numpy index math groups the stream by set; each set is then
    finished with O(1) list-slice operations — one window rotation
    and one row write — instead of ~ten list and set operations per
    address, so the cost scales with the level's *set count*, not
    with ``m``.  Same bit-identical contract as every other fill
    verb; returns the eviction delta.
    """
    a = cache._assoc
    si = c & cache._set_mask
    order = si.argsort(kind="stable")
    ss = si[order]
    first = np.empty(m, dtype=bool)
    first[0] = True
    np.not_equal(ss[1:], ss[:-1], out=first[1:])
    starts_np = np.nonzero(first)[0]
    u_list = ss[starts_np].tolist()
    starts = starts_np.tolist()
    starts.append(m)
    cs_list = c[order].tolist()
    tags = cache._tags
    fills = cache._fill_counts
    heads = cache._heads
    mru = cache._mru
    vict_list: list = []
    surv_list: list = []
    evictions = 0
    for gi, s in enumerate(u_list):
        seg = cs_list[starts[gi]:starts[gi + 1]]
        k = len(seg)
        fill = fills[s]
        total = fill + k
        base = s * a
        if total <= a:
            # Stays within the ways: partial rows are a plain prefix
            # (head 0), so the insertions append as one slice write.
            tags[base + fill:base + total] = seg
            fills[s] = total
            surv_list += seg
            mru[s] = seg[-1]
            continue
        evictions += total - a
        head = heads[s]
        mru[s] = seg[-1]
        if fill == a and k < a:
            # Steady state: the k oldest lines (the circular run
            # starting at ``head``) are overwritten in place —
            # insertion i lands at slot (head + i) % a.
            end = head + k
            if end <= a:
                vict_list += tags[base + head:base + end]
                tags[base + head:base + end] = seg
            else:
                end -= a
                vict_list += tags[base + head:base + a]
                vict_list += tags[base:base + end]
                split = a - head
                tags[base + head:base + a] = seg[:split]
                tags[base:base + end] = seg[split:]
            surv_list += seg
            heads[s] = end if end < a else 0
        elif k >= a:
            # The whole row is replaced by the last ``a`` insertions.
            vict_list += tags[base:base + a] if fill == a \
                else tags[base:base + fill]
            seg = seg[k - a:]
            surv_list += seg
            hn = (head + total) % a
            # Physical row = survivors rotated so index ``hn`` holds
            # the oldest surviving line.
            tags[base:base + a] = (seg[a - hn:] + seg[:a - hn]
                                   if hn else seg)
            heads[s] = hn
            fills[s] = a
        else:
            # Overflowing partial set (head 0, fill < a, k < a): only
            # during warm-up.  Build the combined window explicitly.
            win = tags[base:base + fill]
            vict_list += win[:total - a]
            surv_list += seg
            new_win = (win + seg)[total - a:]
            hn = total % a
            tags[base:base + a] = (new_win[a - hn:] + new_win[:a - hn]
                                   if hn else new_win)
            heads[s] = hn
            fills[s] = a
    resident = cache._resident
    resident.difference_update(vict_list)
    resident.update(surv_list)
    return evictions


def _fill_dense(cache, c: np.ndarray, miss_list: list, m: int) -> int:
    """Fill a private level from a miss stream much larger than it.

    When ``m`` is a multiple of ``nsets * assoc``, almost every
    insertion of the forward walk is itself evicted by a later one, so
    :func:`_fill_scalar` spends most of its time writing lines that do
    not survive the batch.  This verb derives the final window geometry
    per set from the insertion counts alone (one ``bincount``), then
    walks the stream *backward*, writing only the surviving insertions
    — at most ``assoc`` per set — and rebuilds the resident set from
    the finished windows.  Tags, heads, fills, MRU, resident set and
    the returned eviction delta land bit-identical to the forward
    walk's.
    """
    a = cache._assoc
    nsets = cache._num_sets
    mask = cache._set_mask
    tags = cache._tags
    fills = cache._fill_counts
    heads = cache._heads
    mru = cache._mru
    counts = np.bincount(c & mask, minlength=nsets).tolist()
    evictions = 0
    # Per-set geometry: how many insertions survive (``want``), the
    # slot-formula origin ``offs = head + fill`` frozen before the
    # update, and the finished head/fill values.
    offs = [0] * nsets
    want = [0] * nsets
    remaining = 0
    for s in range(nsets):
        k = counts[s]
        if k == 0:
            continue
        fill = fills[s]
        total = fill + k
        offs[s] = heads[s] + fill
        w = k if k < a else a
        want[s] = w
        remaining += w
        if total >= a:
            evictions += total - a
            heads[s] = (heads[s] + total) % a
            fills[s] = a
        else:
            # Partial sets keep head == 0, so the window stays a
            # contiguous prefix of the row.
            fills[s] = total
    # The last ``want[s]`` insertions into each set are exactly the
    # surviving ones, and the first of them met walking backward is
    # the set's MRU line.  Insertion ``occ`` (its occurrence index
    # within the set's stream) lands at ``(offs + occ) % assoc`` —
    # the same slot the forward walk would have left it in.
    seen = [0] * nsets
    for addr in reversed(miss_list):
        s = addr & mask
        got = seen[s]
        if got < want[s]:
            occ = counts[s] - 1 - got
            tags[s * a + (offs[s] + occ) % a] = addr
            if got == 0:
                mru[s] = addr
            seen[s] = got + 1
            remaining -= 1
            if remaining == 0:
                break
    resident = cache._resident
    resident.clear()
    for s in range(nsets):
        base = s * a
        resident.update(tags[base:base + fills[s]])
    return evictions


def _plan_l3_consec(cache, c: np.ndarray, views):
    """Consecutive-run twin of :func:`_plan_fill_g` for the shared L3.

    Only valid when ``m >= num_sets`` and no set overflows its ways
    (the caller checks ``m // num_sets + 1 <= assoc``), so every
    insertion survives.  Returns ``(slots, victims, total, last_i,
    evictions, vslots)``.
    """
    tags_np, fill_np, heads_np = views
    a = cache._assoc
    nsets = cache._num_sets
    mask = cache._set_mask
    m = c.shape[0]
    c0 = int(c[0])
    si = c & mask
    occ = _ar(m) // nsets
    occf = fill_np[si] + occ
    slots = si * a + (heads_np[si] + occf) % a
    victim_mask = occf >= a
    vslots = slots[victim_mask]
    victims = tags_np[vslots]
    counts = np.full(nsets, m // nsets, dtype=np.int64)
    rem = m - (m // nsets) * nsets
    if rem:
        counts[(c0 + _ar(rem)) & mask] += 1
    total = fill_np + counts
    # With k <= assoc per set (caller-checked), every overwritten slot
    # held a pre-batch line: eviction count == victim count.
    evictions = int(victims.shape[0])
    first_i = (_ar(nsets) - c0) % nsets
    last_i = first_i + (counts - 1) * nsets
    return slots, victims, total, last_i, evictions, vslots


def _apply_l3_consec(cache, c, plan, views, miss_list) -> int:
    """Commit a :func:`_plan_l3_consec` plan; return the evictions."""
    slots, victims, total, last_i, evictions, _vslots = plan
    tags_np, fill_np, heads_np = views
    a = cache._assoc
    tags_np[slots] = c
    cache._mru[:] = c[last_i].tolist()
    heads_np[:] = np.where(total >= a, (heads_np + total) % a, 0)
    fill_np[:] = np.minimum(a, total)
    return evictions


class _MixedL3Plan:
    """Validated per-stratum L3 update for a hit/miss mixed prefix."""

    __slots__ = ("plan_a", "sets_b", "addr_b", "replays", "victims",
                 "evictions")

    def __init__(self, plan_a, sets_b, addr_b, replays, victims,
                 evictions):
        self.plan_a = plan_a
        self.sets_b = sets_b
        self.addr_b = addr_b
        self.replays = replays
        self.victims = victims
        self.evictions = evictions


def _plan_mixed_l3(cache, c: np.ndarray, hit: np.ndarray, views,
                   own_col=None, own_bit: int = 0):
    """Plan and validate an L3 update mixing hits and misses.

    No mutation.  Returns ``None`` when an L3 set receives more lines
    than it has ways, or when a predicted hit fails validation (the
    sequential walk would have evicted the line first) — the caller
    must fall back to the scalar kernel.  With ``own_col`` (the L3
    owner-bitmask view) the stratum-(c) replays also evolve each set's
    owner row in lockstep on extracted copies, recording the victims'
    masks and how many hit lines gained this core's bit.
    """
    tags_np, fill_np, heads_np = views
    a = cache._assoc
    si = c & cache._set_mask
    order = si.argsort(kind="stable")
    ss = si[order]
    cs = c[order]
    hs = hit[order]
    nn = ss.shape[0]
    first = np.empty(nn, dtype=bool)
    first[0] = True
    np.not_equal(ss[1:], ss[:-1], out=first[1:])
    starts = np.nonzero(first)[0]
    u = ss[starts]
    counts = np.diff(np.append(starts, nn))
    if int(counts.max()) > a:
        return None
    hit_counts = np.add.reduceat(hs.astype(np.int64), starts)
    pure = hit_counts == 0
    single_hit = (counts == 1) & (hit_counts == 1)
    # Stratum (a): miss-only sets — the closed-form bulk fill.
    # Stable re-grouping of an already set-sorted subsequence keeps
    # every set's insertions in batch order.
    plan_a = None
    elem_pure = np.repeat(pure, counts)
    c_a = cs[elem_pure]
    if c_a.size:
        plan_a = _plan_fill_g(cache, c_a, views)
    victims: list[int] = plan_a[8].tolist() if plan_a is not None else []
    evictions = plan_a[10] if plan_a is not None else 0
    # Stratum (b): one access, a hit — always valid (the line is
    # pre-resident and nothing else touches the set).
    sets_b = u[single_hit]
    addr_b = cs[starts[single_hit]]
    # Stratum (c): everything else mixes a hit with other accesses;
    # replay each set sequentially on extracted copies, mirroring the
    # scalar kernel's L3 branches exactly.
    replays = []
    for g in np.nonzero(~pure & ~single_hit)[0].tolist():
        s = int(u[g])
        st = int(starts[g])
        cnt = int(counts[g])
        ops_addr = cs[st:st + cnt].tolist()
        ops_hit = hs[st:st + cnt].tolist()
        base = s * a
        fill = int(fill_np[s])
        head = int(heads_np[s])
        mru = cache._mru[s]
        tags = tags_np[base:base + a].tolist()
        own_row = (own_col[base:base + a].tolist()
                   if own_col is not None else None)
        vict: list[int] = []
        vict_masks: list[int] = []
        ev = nh = nm = gained = 0
        for addr, pred in zip(ops_addr, ops_hit):
            if mru == addr:
                if not pred:
                    return None
                nh += 1
                if own_row is not None:
                    # The MRU line sits at the logical tail.
                    t = (fill - 1 if fill < a
                         else (head - 1 if head else a - 1))
                    if not own_row[t] & own_bit:
                        own_row[t] |= own_bit
                        gained += 1
                continue
            try:
                w = tags.index(addr, 0, fill if fill < a else a)
            except ValueError:
                w = -1
            if w >= 0:
                if not pred:
                    return None
                # Move-to-tail, wrap-aware when the window is rotated.
                if fill < a:
                    t = fill - 1
                    if own_row is not None:
                        ob = own_row[w]
                        own_row[w:t] = own_row[w + 1:fill]
                        own_row[t] = ob
                    tags[w:t] = tags[w + 1:fill]
                    tags[t] = addr
                else:
                    tail = head - 1 if head else a - 1
                    t = tail
                    if w <= tail:
                        if own_row is not None:
                            ob = own_row[w]
                            own_row[w:tail] = own_row[w + 1:tail + 1]
                            own_row[tail] = ob
                        tags[w:tail] = tags[w + 1:tail + 1]
                        tags[tail] = addr
                    else:
                        end = a - 1
                        if own_row is not None:
                            ob = own_row[w]
                            own_row[w:end] = own_row[w + 1:end + 1]
                            own_row[end] = own_row[0]
                            own_row[0:tail] = own_row[1:tail + 1]
                            own_row[tail] = ob
                        tags[w:end] = tags[w + 1:end + 1]
                        tags[end] = tags[0]
                        tags[0:tail] = tags[1:tail + 1]
                        tags[tail] = addr
                mru = addr
                nh += 1
                if own_row is not None and not own_row[t] & own_bit:
                    own_row[t] |= own_bit
                    gained += 1
            else:
                if pred:
                    # An earlier in-batch fill evicted this predicted
                    # hit: the candidate pricing is wrong; fall back.
                    return None
                nm += 1
                if fill >= a:
                    vict.append(tags[head])
                    tags[head] = addr
                    if own_row is not None:
                        vict_masks.append(own_row[head])
                        own_row[head] = own_bit
                    head = head + 1 if head + 1 < a else 0
                    ev += 1
                else:
                    tags[fill] = addr
                    if own_row is not None:
                        own_row[fill] = own_bit
                    fill += 1
                mru = addr
        replays.append((s, tags, fill, head, mru, vict, ev, nm,
                        own_row, vict_masks, gained))
        victims.extend(vict)
        evictions += ev
    return _MixedL3Plan(plan_a, sets_b, addr_b, replays, victims,
                        evictions)


def _apply_mixed_l3(cache, mixed: _MixedL3Plan, views,
                    own_col=None, own_bit: int = 0):
    """Commit a validated :class:`_MixedL3Plan`.

    With ``own_col`` the owner-bitmask column is updated in lockstep
    — stratum (a) scatters this core's bit over the inserted slots
    (gathering the victims' masks first), stratum (b) mirrors the
    move-to-tail roll and ORs the bit into each hit line, stratum (c)
    writes back the replayed owner rows.  Returns ``(gained,
    vict_masks)``: how many pre-resident hit lines gained the bit, and
    the victims' owner masks aligned with ``mixed.victims``.
    """
    tags_np, fill_np, heads_np = views
    a = cache._assoc
    resident = cache._resident
    mru_list = cache._mru
    gained = 0
    vict_masks: list[int] = []
    if mixed.plan_a is not None:
        if own_col is not None:
            # Victim masks live in the slots the inserts overwrite:
            # gather before the scatter claims them.  Every insertion
            # survives (set counts are capped at the ways), so the
            # scatter covers all planned slots.
            vict_masks.extend(own_col[mixed.plan_a[11]].tolist())
        _apply_fill_g(cache, mixed.plan_a, views)
        if own_col is not None:
            own_col[mixed.plan_a[6]] = own_bit
    sets_b = mixed.sets_b
    if sets_b.size:
        # Bulk move-to-tail: gather each set's window in LRU order,
        # rotate everything at or after the hit line left by one, drop
        # the line at the logical tail, and scatter back.  Slots past
        # a partial window keep their (stale) contents.
        k = sets_b.shape[0]
        addr_b = mixed.addr_b
        h = heads_np[sets_b]
        length = fill_np[sets_b]
        ways = _ar(a)
        phys = sets_b[:, None] * a + (h[:, None] + ways[None, :]) % a
        logical = tags_np[phys]
        valid = ways[None, :] < length[:, None]
        p = ((logical == addr_b[:, None]) & valid).argmax(axis=1)
        rolled = np.empty_like(logical)
        rolled[:, :-1] = logical[:, 1:]
        rolled[:, -1] = logical[:, -1]
        roll_mask = (ways[None, :] >= p[:, None]) & valid
        out = np.where(roll_mask, rolled, logical)
        rows = _ar(k)
        out[rows, length - 1] = addr_b
        tags_np[phys.ravel()] = out.ravel()
        if own_col is not None:
            ologic = own_col[phys]
            ohit = ologic[rows, p]
            orolled = np.empty_like(ologic)
            orolled[:, :-1] = ologic[:, 1:]
            orolled[:, -1] = ologic[:, -1]
            oout = np.where(roll_mask, orolled, ologic)
            oout[rows, length - 1] = ohit | own_bit
            own_col[phys.ravel()] = oout.ravel()
            gained += int(np.count_nonzero((ohit & own_bit) == 0))
        for s, addr in zip(sets_b.tolist(), addr_b.tolist()):
            mru_list[s] = addr
    for s, tags, fill, head, mru, vict, _ev, _nm, own_row, vmasks, \
            g in mixed.replays:
        base = s * a
        tags_np[base:base + a] = tags
        if own_col is not None:
            own_col[base:base + a] = own_row
            vict_masks.extend(vmasks)
            gained += g
        fill_np[s] = fill
        heads_np[s] = head
        mru_list[s] = mru
        if vict:
            resident.difference_update(vict)
    return gained, vict_masks


def commit(hierarchy, core: int, plan: BatchPlan, n_exec: int) -> bool:
    """Apply the first ``n_exec`` accesses of a classified batch.

    Returns ``False`` — with **no state mutated** — when the bulk
    update cannot replay the sequential walk (an overloaded L3 set, an
    invalidated hit prediction, or an inclusive back-invalidation into
    this core's own L1/L2); the caller must then re-route the whole
    untouched batch through the scalar ladder.  On ``True``, every
    counter, stat, tag array, owner record, and occupancy figure is
    bit-identical to the scalar walk over that same prefix.
    """
    l1 = hierarchy.l1[core]
    counters_all = hierarchy.counters
    # Collapsed accesses whose raw position executed (keep_raw is
    # ascending, so the executable ones are a prefix).
    m = int(np.searchsorted(plan.keep_raw, n_exec, side="left"))
    if m == 0:
        # Only stripped MRU repeats executed: pure L1 hits.
        counters_all[core].l1_hits += n_exec
        l1.stats.hits += n_exec
        return True
    c = plan.c[:m]
    hit = None
    nh3 = 0
    if plan.hit is not None:
        hit = plan.hit[:m]
        nh3 = int(hit.sum())
        if nh3 == 0:
            hit = None
    l2 = hierarchy.l2[core]
    l3 = hierarchy.l3
    a3 = l3._assoc
    # Views are created here and die with this frame: a surviving view
    # would keep the array('q') buffers exported and break the scalar
    # verbs' slice assignments (see SetAssociativeCache._vector_views).
    views3 = l3._vector_views()
    owner_arrays = hierarchy._owner_arrays
    own_bit = 1 << core
    own_col = (np.frombuffer(l3._owner_tags, dtype=np.int64)
               if owner_arrays else None)
    mixed = plan3 = None
    consec3 = False
    miss_list = None
    if hit is None:
        if plan.consec and m >= l3._num_sets:
            if m // l3._num_sets + (1 if m % l3._num_sets else 0) > a3:
                return False
            consec3 = True
            plan3 = _plan_l3_consec(l3, c, views3)
            victims3 = plan3[1]
        else:
            plan3 = _plan_fill_g(l3, c, views3)
            if int(plan3[4][plan3[4].argmax()]) > a3:
                # An L3 set receives more lines than ways: some
                # victims would be batch lines, whose mid-batch
                # eviction the bulk update cannot replay.
                return False
            victims3 = plan3[8]
        victims_list = victims3.tolist()
    else:
        mixed = _plan_mixed_l3(l3, c, hit, views3, own_col, own_bit)
        if mixed is None:
            return False
        victims_list = mixed.victims
    inclusive = hierarchy._inclusive
    if inclusive and victims_list:
        # The L3 evicts its stalest lines while the private caches hold
        # the most recent ones, so in the streaming steady state every
        # victim precedes every private-resident line: two min/max
        # comparisons replace the hash scans.
        res1 = l1._resident
        res2 = l2._resident
        vmax = (int(victims3.max()) if mixed is None
                else max(victims_list))
        if ((res1 and vmax >= min(res1))
                or (res2 and vmax >= min(res2))):
            if not (res1.isdisjoint(victims_list)
                    and res2.isdisjoint(victims_list)):
                # Back-invalidating our own private caches mid-batch
                # would change their evolution; fall back.
                return False
    # -- all checks passed: mutate -------------------------------------
    consec12 = plan.consec
    # The one python-list rendering of the executed collapsed stream,
    # shared by the private-level scalar fills, the resident-set
    # updates, and the owner-record insert below.
    exec_list = plan.c_list
    if exec_list is None:
        exec_list = c.tolist()
    elif len(exec_list) != m:
        exec_list = exec_list[:m]
    miss_list = exec_list if mixed is None else None
    # Private levels are list-backed (see SetAssociativeCache): every
    # executed collapsed access misses them (classify proved the batch
    # disjoint from both resident sets), and their capacities are small
    # enough that scalar fills beat the numpy dispatch overhead.
    vector_fills = hierarchy._vector_fills
    cap1 = l1._num_sets * l1._assoc
    if consec12 and m >= cap1:
        ev1 = _fill_replace_py(l1, exec_list, m)
    elif m >= 2 * cap1:
        ev1 = _fill_dense(l1, c, exec_list, m)
    elif vector_fills and m >= _FILL_BATCH_MIN:
        ev1 = _fill_batch(l1, c, exec_list, m)
    else:
        ev1 = _fill_scalar(l1, exec_list)
    cap2 = l2._num_sets * l2._assoc
    if consec12 and m >= cap2:
        ev2 = _fill_replace_py(l2, exec_list, m)
    elif m >= 2 * cap2:
        ev2 = _fill_dense(l2, c, exec_list, m)
    elif vector_fills and m >= _FILL_BATCH_MIN:
        ev2 = _fill_batch(l2, c, exec_list, m)
    else:
        ev2 = _fill_scalar(l2, exec_list)
    l3_resident = l3._resident
    gained3 = 0
    vmasks3 = None
    vict_masks: list[int] = []
    if mixed is None:
        if own_col is not None:
            # The victims' owner masks sit in the slots the inserts
            # overwrite; gather before the scatter claims them.
            vmasks3 = own_col[plan3[5 if consec3 else 11]]
        if consec3:
            ev3 = _apply_l3_consec(l3, c, plan3, views3, miss_list)
            l3_resident.difference_update(victims_list)
            l3_resident.update(miss_list)
            if own_col is not None:
                own_col[plan3[0]] = own_bit
        else:
            ev3 = _apply_fill_g(l3, plan3, views3)
            if own_col is not None:
                # Every insertion survives (set counts capped at the
                # ways, checked above), so the scatter covers all slots.
                own_col[plan3[6]] = own_bit
    else:
        applied = _apply_mixed_l3(l3, mixed, views3, own_col, own_bit)
        gained3, vict_masks = applied
        ev3 = mixed.evictions
        miss_list = c[~hit].tolist()
        l3_resident.update(miss_list)
    del views3
    occupancy = hierarchy._occupancy
    nm3 = m - nh3
    if owner_arrays:
        # Same linearization as the dict walk below: hit sharers
        # first, victim pops second, miss inserts last (every
        # validated hit precedes any eviction of its line).  The bit
        # scatters already happened alongside the tag applies; what is
        # left is the occupancy/steal/back-invalidation fan-out.
        occupancy[core] += gained3
        if victims_list:
            if vmasks3 is not None:
                foreign = bool((vmasks3 & ~own_bit).any())
                vm_list = vmasks3.tolist() if foreign else None
                own_count = int(np.count_nonzero(vmasks3))
            else:
                merged = 0
                for mask in vict_masks:
                    merged |= mask
                foreign = bool(merged & ~own_bit)
                vm_list = vict_masks
                own_count = sum(1 for mask in vict_masks if mask)
            if not foreign:
                # Every victim was solely ours (or untracked): one
                # aggregate occupancy decrement, no steals, and — the
                # inclusive check above proved our own L1/L2 clean —
                # no back-invalidations.
                occupancy[core] -= own_count
            else:
                l1_caches = hierarchy.l1
                l2_caches = hierarchy.l2
                for victim, mask in zip(victims_list, vm_list):
                    owner = 0
                    while mask:
                        if mask & 1:
                            occupancy[owner] -= 1
                            if owner != core:
                                counters_all[owner].lines_stolen += 1
                                if inclusive:
                                    invalidated = (l2_caches[owner]
                                                   .invalidate(victim))
                                    invalidated |= (l1_caches[owner]
                                                    .invalidate(victim))
                                    if invalidated:
                                        counters_all[owner] \
                                            .back_invalidations += 1
                            # owner == core: only the decrement (the
                            # victim is absent from our own L1/L2).
                        mask >>= 1
                        owner += 1
        if miss_list:
            occupancy[core] += nm3
    else:
        owners_map = hierarchy._l3_owners
        if nh3:
            # Hit lines gain this core as a sharer.  Every validated
            # hit precedes any eviction of its line, so sharer updates
            # land before the victim pops below — the scalar
            # chronology.
            owners_get = owners_map.get
            for addr in c[hit].tolist():
                owners = owners_get(addr)
                if owners is not None and core not in owners:
                    owners.add(core)
                    occupancy[core] += 1
        pool: list = []
        if victims_list:
            popped = list(map(owners_map.pop, victims_list,
                              _it_repeat(())))
            merged = set().union(*popped)
            if not merged or merged == {core}:
                # Every victim was solely ours (or untracked): one
                # aggregate occupancy decrement, no steals, and the
                # popped {core} singletons are recycled for the new
                # lines below — the scalar walk's object reuse,
                # batched.  Each non-empty record is the {core}
                # singleton, so the pool length is also the occupancy
                # delta.
                pool = list(filter(None, popped))
                occupancy[core] -= len(pool)
            else:
                l1_caches = hierarchy.l1
                l2_caches = hierarchy.l2
                for victim, owners in zip(victims_list, popped):
                    for owner in owners:
                        occupancy[owner] -= 1
                        if owner != core:
                            counters_all[owner].lines_stolen += 1
                            if inclusive:
                                # The owner's caches are untouched by
                                # this batch, so the scalar
                                # invalidations land on exactly the
                                # state the sequential walk would have
                                # seen.
                                invalidated = (
                                    l2_caches[owner].invalidate(victim))
                                invalidated |= (
                                    l1_caches[owner].invalidate(victim))
                                if invalidated:
                                    counters_all[owner] \
                                        .back_invalidations += 1
                        # owner == core: the inclusive check above
                        # proved the victim is absent from our own
                        # L1/L2, so only the occupancy decrement
                        # applies.
        if miss_list:
            if len(pool) < nm3:
                pool.extend([{core} for _ in range(nm3 - len(pool))])
            owners_map.update(zip(miss_list, pool))
            occupancy[core] += nm3
    # -- flush batch-local deltas --------------------------------------
    nh1 = n_exec - m
    counters_core = counters_all[core]
    counters_core.l1_hits += nh1
    counters_core.l1_misses += m
    counters_core.l2_misses += m
    counters_core.l3_hits += nh3
    counters_core.l3_misses += nm3
    stats = l1.stats
    stats.hits += nh1
    stats.misses += m
    stats.fills += m
    stats.evictions += ev1
    stats = l2.stats
    stats.misses += m
    stats.fills += m
    stats.evictions += ev2
    stats = l3.stats
    stats.hits += nh3
    stats.misses += nm3
    stats.fills += nm3
    stats.evictions += ev3
    # Raise the monotone fill bounds (conservatively over the whole
    # executed stream; see SetAssociativeCache._max_tag).
    mx = exec_list[-1] if consec12 else int(c.max())
    if mx > l1._max_tag:
        l1._max_tag = mx
    if mx > l2._max_tag:
        l2._max_tag = mx
    if mx > l3._max_tag:
        l3._max_tag = mx
    return True
