"""Exception hierarchy for the CAER reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An invalid machine, workload, or runtime configuration."""


class CacheConfigError(ConfigError):
    """A cache was configured with impossible geometry.

    For example a non-power-of-two set count, a zero associativity, or a
    line size that does not divide the capacity.
    """


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class SchedulingError(SimulationError):
    """A process could not be placed on (or removed from) a core."""


class WorkloadError(ReproError):
    """A workload model was mis-specified or exhausted unexpectedly."""


class UnknownBenchmarkError(WorkloadError):
    """Lookup of a benchmark name that is not in the SPEC 2006 registry."""

    def __init__(self, name: str, known: tuple[str, ...] = ()):
        self.name = name
        self.known = known
        hint = f" (known: {', '.join(known)})" if known else ""
        super().__init__(f"unknown benchmark {name!r}{hint}")


class PerfmonError(ReproError):
    """Misuse of the perfmon session API (e.g. reading a closed session)."""


class DetectorError(ReproError):
    """A contention detector was driven outside its legal state machine."""


class ExperimentError(ReproError):
    """An experiment campaign failed or was asked for unknown artefacts."""


class ObservabilityError(ReproError):
    """A tracer sink or metrics instrument was mis-configured or misused."""


class FaultPlanError(ConfigError):
    """A fault-injection plan was mis-specified (rates, caps, seeds)."""


class ChaosError(ReproError):
    """A failure injected on purpose by the ``REPRO_CHAOS`` test mode.

    Raised only when chaos mode is armed; seeing one outside a test run
    means the environment variable leaked.
    """
