"""repro: a reproduction of CAER — Contention Aware Execution.

Mars, Vachharajani, Hundt, Soffa: *Contention Aware Execution: Online
Contention Detection and Response*, CGO 2010.

The library has four layers:

* :mod:`repro.arch` + :mod:`repro.workloads` — the simulated substrate:
  a Nehalem-style multicore (private L1/L2, shared inclusive L3,
  bandwidth-limited memory, per-core PMUs) and synthetic models of the
  21 C/C++ SPEC CPU2006 benchmarks;
* :mod:`repro.sim` + :mod:`repro.perfmon` — the execution engine that
  advances the chip one probe period at a time and the Perfmon2-like
  counter-sampling API;
* :mod:`repro.caer` — the paper's contribution: the contention-aware
  runtime with its Burst-Shutter and Rule-Based detectors, red-light/
  green-light and soft-lock responses, and evaluation metrics;
* :mod:`repro.experiments` — drivers that regenerate every figure of
  the paper's evaluation, plus tuning-space ablations.

Quickstart::

    from repro import (CaerConfig, MachineConfig, benchmark,
                       caer_factory, run_colocated, run_solo)
    from repro.caer import slowdown, utilization_gained

    machine = MachineConfig.scaled_nehalem()
    l3 = machine.l3.capacity_lines
    mcf, lbm = benchmark("429.mcf", l3), benchmark("470.lbm", l3)

    solo = run_solo(mcf, machine)
    managed = run_colocated(mcf, lbm, machine,
                            caer_factory=caer_factory(
                                CaerConfig.rule_based()))
    print(slowdown(managed, solo), utilization_gained(managed))
"""

from .caer import (
    BurstShutterDetector,
    CaerConfig,
    CaerRuntime,
    RandomDetector,
    RedLightGreenLight,
    RuleBasedDetector,
    SoftLock,
    caer_factory,
)
from .config import CacheGeometry, CacheLatencies, MachineConfig
from .obs import (
    JSONLSink,
    MetricsRegistry,
    RingBufferSink,
    Tracer,
)
from .sim import (
    AppClass,
    RunResult,
    SimProcess,
    SimulationEngine,
    run_colocated,
    run_solo,
)
from .workloads import benchmark, benchmark_names

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "CacheGeometry",
    "CacheLatencies",
    "benchmark",
    "benchmark_names",
    "run_solo",
    "run_colocated",
    "SimulationEngine",
    "SimProcess",
    "AppClass",
    "RunResult",
    "CaerConfig",
    "CaerRuntime",
    "caer_factory",
    "BurstShutterDetector",
    "RuleBasedDetector",
    "RandomDetector",
    "RedLightGreenLight",
    "SoftLock",
    "Tracer",
    "RingBufferSink",
    "JSONLSink",
    "MetricsRegistry",
    "__version__",
]
