"""Run orchestration with memoisation.

A *campaign* owns one machine configuration and run length and produces
the simulation runs the figures need: each SPEC benchmark alone, and
co-located with lbm under no runtime / CAER-shutter / CAER-rule-based /
CAER-random.  Figures 6, 7, and 8 analyse the same runs three ways, so
runs are summarised once into :class:`RunSummary` records, memoised in
memory, and (optionally) persisted as JSON so repeated bench invocations
do not re-simulate.

The cache key includes the machine geometry, run length, seed, and the
library version, so stale entries are never reused across code changes
that alter results — bump :data:`CACHE_EPOCH` when simulation semantics
change.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable

from ..caer.metrics import utilization_gained
from ..caer.runtime import CaerConfig, caer_factory
from ..config import MachineConfig
from ..errors import ExperimentError
from ..obs import JSONLSink, MetricsRegistry, Tracer
from ..sim import run_colocated, run_solo
from ..sim.results import RunResult
from ..workloads import benchmark
from .executor import run_many

#: When set, every simulated run writes its decision trace as
#: ``trace_<bench>__<config>.jsonl`` under this directory (the CLI's
#: ``--trace`` flag sets it; worker processes inherit it via fork).
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: Bump when simulation semantics change so cached results invalidate.
CACHE_EPOCH = 5

#: The co-location configurations of the paper's evaluation.
CONFIGS = ("raw", "shutter", "rule", "random")

#: The contender used throughout the paper's experiments (§6.1).
BATCH_BENCHMARK = "470.lbm"


def _env_float(name: str, default: float) -> float:
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return float(value)
    except ValueError:
        raise ExperimentError(f"{name} must be a float, got {value!r}")


@dataclass(frozen=True)
class CampaignSettings:
    """Machine and run-length settings shared by a whole campaign.

    ``length`` scales every benchmark's instruction budget; 1.0 gives
    ~1000 probe periods per solo run (the most faithful but slowest
    setting), and the default of 0.2 gives ~200 periods — enough for
    every heuristic to settle while keeping the full campaign to a few
    minutes.  Override per shell with ``REPRO_LENGTH``.
    """

    length: float = 0.2
    seed: int = 0
    cache_scale: int = 16
    period_cycles: int = 40_000
    slices_per_period: int = 8

    @classmethod
    def from_env(cls) -> "CampaignSettings":
        """Settings with ``REPRO_LENGTH``/``REPRO_SEED`` applied."""
        return cls(
            length=_env_float("REPRO_LENGTH", 0.2),
            seed=int(_env_float("REPRO_SEED", 0)),
        )

    def machine(self) -> MachineConfig:
        """Build the machine these settings describe."""
        return MachineConfig.scaled_nehalem(
            cache_scale=self.cache_scale,
            period_cycles=self.period_cycles,
        )

    def cache_tag(self) -> str:
        """Filesystem-safe identity of these settings."""
        return (
            f"e{CACHE_EPOCH}_s{self.cache_scale}_p{self.period_cycles}"
            f"_l{self.length}_r{self.seed}"
        )


@dataclass
class RunSummary:
    """The per-run quantities the figures consume (JSON-serialisable)."""

    bench: str
    config: str  # "solo" or one of CONFIGS
    completion_periods: int
    total_periods: int
    ls_total_llc_misses: int
    utilization_gained: float
    #: per-period LLC misses of the latency-sensitive app
    miss_series: list[int] = field(default_factory=list)
    #: per-period instructions retired by the latency-sensitive app
    instruction_series: list[float] = field(default_factory=list)
    #: wall-clock seconds the simulation took (excluded from equality:
    #: parallel and serial campaigns must compare identical).  0.0
    #: marks cached entries that predate timing ("n/a" in reports).
    wall_seconds: float = field(default=0.0, compare=False)
    #: telemetry snapshot of the run (metrics registry snapshot plus
    #: derived scalars); ``None`` for entries cached before the
    #: observability layer existed.  Excluded from equality: tracing
    #: and telemetry must never make two runs compare different.
    telemetry: dict | None = field(default=None, compare=False)

    @classmethod
    def from_run(
        cls, bench: str, config: str, result: RunResult,
        keep_series: bool = True,
    ) -> "RunSummary":
        """Condense a full :class:`RunResult` into the cacheable summary.

        ``keep_series`` controls whether the per-period miss and
        instruction series are retained (Figure 3 needs them; the other
        figures only use the scalars).
        """
        ls = result.latency_sensitive()
        gained = (
            utilization_gained(result) if result.batch_processes() else 0.0
        )
        return cls(
            bench=bench,
            config=config,
            completion_periods=ls.completion_periods,
            total_periods=result.total_periods,
            ls_total_llc_misses=ls.total_llc_misses(),
            utilization_gained=gained,
            miss_series=ls.llc_miss_series() if keep_series else [],
            instruction_series=(
                [round(x, 1) for x in ls.instruction_series()]
                if keep_series
                else []
            ),
        )


def resolve_caer_config(config: str) -> CaerConfig | None:
    """Map a config tag to the CAER setup the paper evaluates."""
    if config == "raw":
        return None
    if config == "shutter":
        return CaerConfig.shutter()
    if config == "rule":
        return CaerConfig.rule_based()
    if config == "random":
        return CaerConfig.random_baseline()
    raise ExperimentError(f"unknown co-location config {config!r}")


def _run_tracer(bench: str, config: str) -> Tracer | None:
    """Build the per-run JSONL tracer when ``REPRO_TRACE_DIR`` is set."""
    trace_dir = os.environ.get(TRACE_DIR_ENV)
    if not trace_dir:
        return None
    safe = bench.replace(".", "_")
    path = Path(trace_dir) / f"trace_{safe}__{config}.jsonl"
    return Tracer([JSONLSink(path)])


def derive_telemetry(metrics: MetricsRegistry) -> dict:
    """Snapshot a run's registry plus the derived headline scalars."""
    snapshot = metrics.snapshot()

    def _counter(name: str) -> float:
        entry = snapshot.get(name)
        return entry["value"] if entry else 0.0

    caer_periods = _counter("caer.periods")
    positives = _counter("caer.verdicts_positive")
    verdicts = positives + _counter("caer.verdicts_negative")
    paused = _counter("caer.batch_paused_periods")
    derived: dict = {
        #: fraction of issued verdicts asserting contention
        "detector_trigger_rate": (
            positives / verdicts if verdicts else 0.0
        ),
        #: fraction of CAER-governed periods the batch side actually ran
        "batch_run_fraction": (
            1.0 - paused / caer_periods if caer_periods else 1.0
        ),
        "verdicts": verdicts,
    }
    return {"metrics": snapshot, "derived": derived}


def produce_summary(
    settings: CampaignSettings, bench: str, config: str
) -> RunSummary:
    """Simulate one (bench, config) run and condense it to a summary.

    The unit of work of the parallel executor: module-level, driven
    only by its (picklable) arguments, touching no shared state — the
    campaign's memoisation layers stay in the parent process.
    ``config`` is ``"solo"`` or one of :data:`CONFIGS`.
    """
    started = time.perf_counter()
    machine = settings.machine()
    l3 = machine.l3.capacity_lines
    spec = benchmark(bench, l3, length=settings.length)
    tracer = _run_tracer(bench, config)
    metrics = MetricsRegistry()
    try:
        if config == "solo":
            result = run_solo(
                spec,
                machine,
                seed=settings.seed,
                slices_per_period=settings.slices_per_period,
                tracer=tracer,
                metrics=metrics,
            )
        else:
            batch = benchmark(BATCH_BENCHMARK, l3, length=settings.length)
            caer = resolve_caer_config(config)
            result = run_colocated(
                spec,
                batch,
                machine,
                caer_factory=caer_factory(caer) if caer else None,
                seed=settings.seed,
                slices_per_period=settings.slices_per_period,
                tracer=tracer,
                metrics=metrics,
            )
    finally:
        if tracer is not None:
            tracer.close()
    summary = RunSummary.from_run(bench, config, result)
    summary.wall_seconds = round(time.perf_counter() - started, 3)
    summary.telemetry = derive_telemetry(metrics)
    return summary


class Campaign:
    """Produces and memoises the runs behind every figure."""

    def __init__(
        self,
        settings: CampaignSettings | None = None,
        cache_dir: str | os.PathLike | None = None,
        use_disk_cache: bool = True,
        jobs: int | None = None,
    ):
        self.settings = settings or CampaignSettings.from_env()
        self._memory: dict[tuple[str, str], RunSummary] = {}
        if cache_dir is None:
            cache_dir = os.environ.get(
                "REPRO_CACHE_DIR", Path.home() / ".cache" / "repro-caer"
            )
        self.cache_dir = Path(cache_dir) if use_disk_cache else None
        #: default worker count for :meth:`prefetch` (None = resolve
        #: from ``REPRO_JOBS`` / cpu count at fan-out time)
        self.jobs = jobs
        #: campaign-level telemetry: cache hit/miss counters and the
        #: executor's per-job span histogram
        self.metrics = MetricsRegistry()

    # -- configuration -> runtime factory --------------------------------

    caer_config = staticmethod(resolve_caer_config)

    # -- cache plumbing ---------------------------------------------------

    def _cache_path(self, bench: str, config: str) -> Path | None:
        if self.cache_dir is None:
            return None
        safe = bench.replace(".", "_")
        return (
            self.cache_dir
            / self.settings.cache_tag()
            / f"{safe}__{config}.json"
        )

    def _load(self, bench: str, config: str) -> RunSummary | None:
        key = (bench, config)
        if key in self._memory:
            self.metrics.counter("campaign.cache_memory_hits").inc()
            return self._memory[key]
        path = self._cache_path(bench, config)
        if path is None or not path.exists():
            self.metrics.counter("campaign.cache_misses").inc()
            return None
        try:
            with open(path) as handle:
                data = json.load(handle)
            summary = RunSummary(**data)
        except (json.JSONDecodeError, TypeError):
            self.metrics.counter("campaign.cache_invalid").inc()
            return None
        self.metrics.counter("campaign.cache_disk_hits").inc()
        self._memory[key] = summary
        return summary

    def _store(self, summary: RunSummary) -> None:
        self._memory[(summary.bench, summary.config)] = summary
        path = self._cache_path(summary.bench, summary.config)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        # Unique temp name + atomic rename: concurrent campaign
        # processes sharing a cache dir never observe a torn file, and
        # a crash mid-write leaves the previous entry intact.
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(asdict(summary), handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- run production ---------------------------------------------------

    def prefetch(
        self,
        benches: Iterable[str],
        configs: Iterable[str],
        jobs: int | None = None,
    ) -> int:
        """Materialise every missing (bench, config) summary in bulk.

        The figure drivers call this before their serial analysis
        loops: missing runs from the ``benches`` × ``configs`` product
        are fanned across worker processes (``jobs`` workers, falling
        back to the campaign's default, then ``REPRO_JOBS``/cpu count),
        cached, and subsequent :meth:`solo`/:meth:`colocated` calls are
        pure lookups.  Returns the number of runs simulated.
        """
        pairs = [
            (bench, config)
            for bench in benches
            for config in configs
            if self._load(bench, config) is None
        ]
        if not pairs:
            return 0
        if jobs is None:
            jobs = self.jobs
        summaries = run_many(
            self.settings, pairs, jobs=jobs, metrics=self.metrics
        )
        for summary in summaries:
            self._store(summary)
        self.metrics.counter("campaign.runs_simulated").inc(len(pairs))
        return len(pairs)

    def solo(self, bench: str) -> RunSummary:
        """The benchmark running alone on the chip."""
        cached = self._load(bench, "solo")
        if cached is not None:
            return cached
        summary = produce_summary(self.settings, bench, "solo")
        self._store(summary)
        self.metrics.counter("campaign.runs_simulated").inc()
        return summary

    def colocated(self, bench: str, config: str) -> RunSummary:
        """The benchmark co-located with lbm under ``config``."""
        if config not in CONFIGS:
            raise ExperimentError(
                f"config must be one of {CONFIGS}, got {config!r}"
            )
        cached = self._load(bench, config)
        if cached is not None:
            return cached
        summary = produce_summary(self.settings, bench, config)
        self._store(summary)
        self.metrics.counter("campaign.runs_simulated").inc()
        return summary

    # -- derived metrics --------------------------------------------------

    def slowdown(self, bench: str, config: str) -> float:
        """Completion-time ratio of ``config`` vs. solo."""
        solo = self.solo(bench)
        colo = self.colocated(bench, config)
        return colo.completion_periods / solo.completion_periods

    def penalty(self, bench: str, config: str) -> float:
        """Cross-core interference penalty of ``config`` vs. solo."""
        return self.slowdown(bench, config) - 1.0

    def memoised_runs(self) -> int:
        """Number of run summaries currently memoised in this process."""
        return len(self._memory)

    def total_wall_seconds(self) -> float:
        """Wall-clock simulation time across every memoised run.

        Runs served from a pre-timing disk cache contribute 0.0.
        """
        return sum(s.wall_seconds for s in self._memory.values())

    def timing_coverage(self) -> tuple[int, int]:
        """``(timed, total)`` memoised runs.

        ``timed`` counts summaries carrying a real ``wall_seconds``
        measurement; cached entries written before run timing existed
        (same cache epoch, older code) deserialise as 0.0 and are *not*
        timed — reports must render those as "n/a", never as 0.0 s.
        """
        timed = sum(
            1 for s in self._memory.values() if s.wall_seconds > 0.0
        )
        return timed, len(self._memory)

    def telemetry_snapshots(self) -> list[dict]:
        """Per-run telemetry of every memoised run that carries one."""
        return [
            s.telemetry for s in self._memory.values()
            if s.telemetry is not None
        ]
