"""Run orchestration with memoisation.

A *campaign* owns one machine configuration and run length and produces
the simulation runs the figures need: each SPEC benchmark alone, and
co-located with lbm under no runtime / CAER-shutter / CAER-rule-based /
CAER-random.  Figures 6, 7, and 8 analyse the same runs three ways, so
runs are summarised once into :class:`RunSummary` records, memoised in
memory, and (optionally) persisted as JSON so repeated bench invocations
do not re-simulate.

Every run the campaign produces is described by a declarative
:class:`~repro.runspec.RunSpec`, and the cache is keyed by the spec's
content-addressed digest: two drivers asking for the same physical run
— whatever words they use for it — hit the same entry, and any knob
that can change a result (machine geometry, CAER policy, seed, length,
backend) is in the key by construction.  :func:`audit_cache_key`
enforces that invariant at campaign construction for every
:class:`CampaignSettings` field.  Bump :data:`CACHE_EPOCH` when
simulation semantics change without a spec-visible knob moving.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable

from ..caer.metrics import utilization_gained
from ..config import MachineConfig
from ..errors import ConfigError, ExperimentError
from ..obs import MetricsRegistry, merge_snapshots
from ..obs.heartbeat import (
    beacon_dir,
    merge_beacon_metrics,
    scan_beacons,
    write_beacon,
)
from ..runspec import (
    BATCH_BENCHMARK,
    CONFIGS,
    RunOutcome,
    RunSpec,
    derive_telemetry,
    paper_run_spec,
    resolve_caer_config,
)
from ..sim.results import RunResult
from .executor import TRACE_DIR_ENV, _execute_spec
from .resilience import (
    CampaignJournal,
    QuarantineRecord,
    RetryPolicy,
    run_specs_resilient,
)

__all__ = [
    "CACHE_EPOCH",
    "CONFIGS",
    "BATCH_BENCHMARK",
    "TRACE_DIR_ENV",
    "RETRY_QUARANTINED_ENV",
    "CampaignSettings",
    "RunSummary",
    "Campaign",
    "audit_cache_key",
    "produce_summary",
    "resolve_caer_config",
    "derive_telemetry",
]

#: Bump when simulation semantics change so cached results invalidate.
#: (7: spec version 2 — the fault plan joined the digest — and
#: statistical-backend telemetry became CAER-aware.  8: spec version 3
#: — the CAER plugin-parameter mappings joined the digest.)
CACHE_EPOCH = 8

#: When set (to anything truthy), a campaign ignores quarantine records
#: inherited from its journal and gives previously failing specs a
#: fresh chance; the journal itself is left intact until they complete.
RETRY_QUARANTINED_ENV = "REPRO_RETRY_QUARANTINED"


def _env_float(name: str, default: float) -> float:
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return float(value)
    except ValueError:
        raise ExperimentError(f"{name} must be a float, got {value!r}")


@dataclass(frozen=True)
class CampaignSettings:
    """Machine and run-length settings shared by a whole campaign.

    ``length`` scales every benchmark's instruction budget; 1.0 gives
    ~1000 probe periods per solo run (the most faithful but slowest
    setting), and the default of 0.2 gives ~200 periods — enough for
    every heuristic to settle while keeping the full campaign to a few
    minutes.  Override per shell with ``REPRO_LENGTH``.  ``backend``
    names the execution engine every run uses (``REPRO_BACKEND``, or
    the CLI's ``--backend``).

    Every field here must flow into :meth:`run_spec` — and therefore
    into the cache key — or :func:`audit_cache_key` refuses to build a
    campaign on top of it.
    """

    length: float = 0.2
    seed: int = 0
    cache_scale: int = 16
    period_cycles: int = 40_000
    slices_per_period: int = 8
    backend: str = "sim"

    @classmethod
    def from_env(cls) -> "CampaignSettings":
        """Settings with ``REPRO_LENGTH``/``REPRO_SEED``/``REPRO_BACKEND``
        applied."""
        return cls(
            length=_env_float("REPRO_LENGTH", 0.2),
            seed=int(_env_float("REPRO_SEED", 0)),
            backend=os.environ.get("REPRO_BACKEND", "sim"),
        )

    def machine(self) -> MachineConfig:
        """Build the machine these settings describe."""
        return MachineConfig.scaled_nehalem(
            cache_scale=self.cache_scale,
            period_cycles=self.period_cycles,
        )

    def run_spec(self, bench: str, config: str) -> RunSpec:
        """The declarative spec of one (bench, config) campaign run."""
        return paper_run_spec(
            bench,
            config,
            self.machine(),
            seed=self.seed,
            length=self.length,
            slices_per_period=self.slices_per_period,
            backend=self.backend,
        )

    def cache_tag(self) -> str:
        """Filesystem-safe identity of these settings (for reports)."""
        return (
            f"e{CACHE_EPOCH}_s{self.cache_scale}_p{self.period_cycles}"
            f"_l{self.length}_r{self.seed}_{self.backend}"
        )


#: How :func:`audit_cache_key` perturbs each settings field.  A new
#: field on :class:`CampaignSettings` must add a perturbation here (one
#: that yields a *valid* settings object differing only in that field).
_AUDIT_PERTURBATIONS = {
    "length": lambda s: dataclasses.replace(s, length=s.length * 2),
    "seed": lambda s: dataclasses.replace(s, seed=s.seed + 1),
    "cache_scale": lambda s: dataclasses.replace(
        s, cache_scale=s.cache_scale * 2
    ),
    "period_cycles": lambda s: dataclasses.replace(
        s, period_cycles=s.period_cycles * 2
    ),
    "slices_per_period": lambda s: dataclasses.replace(
        s, slices_per_period=s.slices_per_period + 1
    ),
    "backend": lambda s: dataclasses.replace(
        s, backend="statistical" if s.backend != "statistical" else "sim"
    ),
}

#: The coordinates the audit probes (a co-located CAER run exercises
#: every spec field, contenders and policy included).
_AUDIT_RUN = ("429.mcf", "rule")


def audit_cache_key(settings: CampaignSettings) -> None:
    """Assert every settings field participates in the cache key.

    For each field of :class:`CampaignSettings`, perturb it and check
    the spec digest moves.  Raises :class:`ConfigError` if a field has
    no registered perturbation (someone added a knob without auditing
    it) or if perturbing it leaves the digest unchanged (the knob would
    silently alias cache entries).  Runs at :class:`Campaign`
    construction — digest checks are cheap; stale-cache bugs are not.
    """
    unaudited = [
        f.name
        for f in dataclasses.fields(settings)
        if f.name not in _AUDIT_PERTURBATIONS
    ]
    if unaudited:
        raise ConfigError(
            f"CampaignSettings field(s) {unaudited} have no cache-key "
            f"audit perturbation — add one to _AUDIT_PERTURBATIONS so "
            f"the field provably reaches the cache key"
        )
    base = settings.run_spec(*_AUDIT_RUN).digest
    for name, perturb in _AUDIT_PERTURBATIONS.items():
        if perturb(settings).run_spec(*_AUDIT_RUN).digest == base:
            raise ConfigError(
                f"CampaignSettings.{name} does not affect the run-spec "
                f"digest: changing it would silently reuse stale cache "
                f"entries"
            )


@dataclass
class RunSummary:
    """The per-run quantities the figures consume (JSON-serialisable)."""

    bench: str
    config: str  # "solo" or one of CONFIGS
    completion_periods: int
    total_periods: int
    ls_total_llc_misses: int
    utilization_gained: float
    #: per-period LLC misses of the latency-sensitive app
    miss_series: list[int] = field(default_factory=list)
    #: per-period instructions retired by the latency-sensitive app
    instruction_series: list[float] = field(default_factory=list)
    #: wall-clock seconds the simulation took (excluded from equality:
    #: parallel and serial campaigns must compare identical).  0.0
    #: marks cached entries that predate timing ("n/a" in reports).
    wall_seconds: float = field(default=0.0, compare=False)
    #: telemetry snapshot of the run (metrics registry snapshot plus
    #: derived scalars and the spec digest); ``None`` for entries cached
    #: before the observability layer existed.  Excluded from equality:
    #: tracing and telemetry must never make two runs compare different.
    telemetry: dict | None = field(default=None, compare=False)

    @classmethod
    def from_run(
        cls, bench: str, config: str, result: RunResult,
        keep_series: bool = True,
    ) -> "RunSummary":
        """Condense a full :class:`RunResult` into the cacheable summary.

        ``keep_series`` controls whether the per-period miss and
        instruction series are retained (Figure 3 needs them; the other
        figures only use the scalars).
        """
        ls = result.latency_sensitive()
        gained = (
            utilization_gained(result) if result.batch_processes() else 0.0
        )
        return cls(
            bench=bench,
            config=config,
            completion_periods=ls.completion_periods,
            total_periods=result.total_periods,
            ls_total_llc_misses=ls.total_llc_misses(),
            utilization_gained=gained,
            miss_series=ls.llc_miss_series() if keep_series else [],
            instruction_series=(
                [round(x, 1) for x in ls.instruction_series()]
                if keep_series
                else []
            ),
        )

    @classmethod
    def from_outcome(
        cls, bench: str, config: str, outcome: RunOutcome
    ) -> "RunSummary":
        """Relabel a backend :class:`RunOutcome` into the campaign's
        (bench, config) vocabulary."""
        return cls(
            bench=bench,
            config=config,
            completion_periods=outcome.completion_periods,
            total_periods=outcome.total_periods,
            ls_total_llc_misses=outcome.ls_total_llc_misses,
            utilization_gained=outcome.utilization_gained,
            miss_series=outcome.miss_series,
            instruction_series=outcome.instruction_series,
            wall_seconds=outcome.wall_seconds,
            telemetry=outcome.telemetry,
        )


def produce_summary(
    settings: CampaignSettings, bench: str, config: str
) -> RunSummary:
    """Execute one (bench, config) run and condense it to a summary.

    Builds the run's :class:`RunSpec` and executes it on the settings'
    backend — the same path the parallel executor fans out, so serial
    and parallel campaigns are bit-identical.  ``config`` is ``"solo"``
    or one of :data:`CONFIGS`.
    """
    spec = settings.run_spec(bench, config)
    return RunSummary.from_outcome(bench, config, _execute_spec(spec))


class Campaign:
    """Produces and memoises the runs behind every figure."""

    def __init__(
        self,
        settings: CampaignSettings | None = None,
        cache_dir: str | os.PathLike | None = None,
        use_disk_cache: bool = True,
        jobs: int | None = None,
        retry: RetryPolicy | None = None,
    ):
        self.settings = settings or CampaignSettings.from_env()
        audit_cache_key(self.settings)
        self._memory: dict[str, RunSummary] = {}
        self._specs: dict[tuple[str, str], RunSpec] = {}
        if cache_dir is None:
            cache_dir = os.environ.get(
                "REPRO_CACHE_DIR", Path.home() / ".cache" / "repro-caer"
            )
        self.cache_dir = Path(cache_dir) if use_disk_cache else None
        #: default worker count for :meth:`prefetch` (None = resolve
        #: from ``REPRO_JOBS`` / cpu count at fan-out time)
        self.jobs = jobs
        #: retry/timeout posture of :meth:`prefetch` (None = defaults
        #: with ``REPRO_RETRIES``/``REPRO_RUN_TIMEOUT`` applied)
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        #: campaign-level telemetry: cache hit/miss counters and the
        #: executor's per-job span histogram
        self.metrics = MetricsRegistry()
        #: specs given up on, by digest (persisted through the journal)
        self.quarantined: dict[str, QuarantineRecord] = {}
        #: crash-safe record of completed/quarantined digests; lives
        #: next to the cache entries it describes
        self.journal: CampaignJournal | None = None
        if self.cache_dir is not None:
            self.journal = CampaignJournal(
                self.cache_dir / f"e{CACHE_EPOCH}" / "journal.jsonl"
            )
            if not os.environ.get(RETRY_QUARANTINED_ENV):
                for digest, record in self.journal.quarantined.items():
                    self.quarantined[digest] = QuarantineRecord(
                        digest=digest,
                        label=(
                            f"({record.get('bench', '?')}, "
                            f"{record.get('config', '?')})"
                        ),
                        attempts=int(record.get("attempts", 0)),
                        error=str(record.get("error", "unknown failure")),
                    )

    # -- configuration -> runtime factory --------------------------------

    caer_config = staticmethod(resolve_caer_config)

    # -- run identity -----------------------------------------------------

    def spec_for(self, bench: str, config: str) -> RunSpec:
        """The declarative spec this campaign runs for (bench, config)."""
        key = (bench, config)
        spec = self._specs.get(key)
        if spec is None:
            spec = self.settings.run_spec(bench, config)
            self._specs[key] = spec
        return spec

    # -- cache plumbing ---------------------------------------------------

    def _cache_path(self, bench: str, config: str) -> Path | None:
        if self.cache_dir is None:
            return None
        digest = self.spec_for(bench, config).digest
        return self.cache_dir / f"e{CACHE_EPOCH}" / f"{digest}.json"

    def _load(self, bench: str, config: str) -> RunSummary | None:
        digest = self.spec_for(bench, config).digest
        if digest in self._memory:
            self.metrics.counter("campaign.cache_memory_hits").inc()
            return self._memory[digest]
        path = self._cache_path(bench, config)
        if path is None or not path.exists():
            self.metrics.counter("campaign.cache_misses").inc()
            return None
        try:
            with open(path) as handle:
                data = json.load(handle)
            summary = RunSummary(**data)
        except OSError:
            # The entry vanished between exists() and open(): a miss.
            self.metrics.counter("campaign.cache_misses").inc()
            return None
        except (json.JSONDecodeError, TypeError):
            # A corrupt or truncated entry is a cache miss, never a
            # crash: rename it aside (preserving the evidence) so the
            # slot is free for the re-simulated result.
            self.metrics.counter("campaign.cache_invalid").inc()
            try:
                path.rename(path.with_name(path.name + ".corrupt"))
            except OSError:
                pass
            return None
        self.metrics.counter("campaign.cache_disk_hits").inc()
        self._memory[digest] = summary
        return summary

    def _store(self, summary: RunSummary) -> None:
        digest = self.spec_for(summary.bench, summary.config).digest
        self._memory[digest] = summary
        path = self._cache_path(summary.bench, summary.config)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        # Unique temp name + atomic rename: concurrent campaign
        # processes sharing a cache dir never observe a torn file, and
        # a crash mid-write leaves the previous entry intact.
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(asdict(summary), handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- run production ---------------------------------------------------

    def prefetch(
        self,
        benches: Iterable[str],
        configs: Iterable[str],
        jobs: int | None = None,
    ) -> int:
        """Materialise every missing (bench, config) summary in bulk.

        The figure drivers call this before their serial analysis
        loops: missing runs from the ``benches`` × ``configs`` product
        are fanned across worker processes (``jobs`` workers, falling
        back to the campaign's default, then ``REPRO_JOBS``/cpu count),
        cached, and subsequent :meth:`solo`/:meth:`colocated` calls are
        pure lookups.  Returns the number of runs simulated.

        Execution is *resilient*: each run is checkpointed — stored,
        journalled, counted — the moment it completes, so interrupting
        a campaign and re-running resumes with zero re-execution
        (``campaign.journal_resumed`` counts the runs the journal
        vouched for); failing runs are retried per the campaign's
        :class:`RetryPolicy` and quarantined when persistent, leaving
        the rest of the campaign intact.
        """
        benches = list(benches)
        configs = list(configs)
        pairs: list[tuple[str, str]] = []
        for bench in benches:
            for config in configs:
                if self._load(bench, config) is not None:
                    if (
                        self.journal is not None
                        and self.spec_for(bench, config).digest
                        in self.journal.completed
                    ):
                        self.metrics.counter(
                            "campaign.journal_resumed"
                        ).inc()
                    continue
                digest = self.spec_for(bench, config).digest
                if digest in self.quarantined:
                    self.metrics.counter(
                        "campaign.quarantine_skipped"
                    ).inc()
                    continue
                pairs.append((bench, config))
        runs_total = len(benches) * len(configs)
        if not pairs:
            self._emit_beacon(
                "done", runs_total=runs_total, runs_completed=0
            )
            return 0
        if jobs is None:
            jobs = self.jobs
        by_digest: dict[str, tuple[str, str]] = {}
        specs: list[RunSpec] = []
        for bench, config in pairs:
            spec = self.spec_for(bench, config)
            by_digest[spec.digest] = (bench, config)
            specs.append(spec)
        completed = 0
        self._emit_beacon(
            "running", runs_total=runs_total, runs_completed=0
        )

        def _checkpoint(
            spec: RunSpec, outcome: RunOutcome, attempt: int
        ) -> None:
            nonlocal completed
            bench, config = by_digest[spec.digest]
            self._store(RunSummary.from_outcome(bench, config, outcome))
            if self.journal is not None:
                self.journal.record_done(
                    spec.digest, bench, config, attempts=attempt
                )
            self.metrics.counter("campaign.runs_simulated").inc()
            completed += 1
            self._emit_beacon(
                "running",
                runs_total=runs_total,
                runs_completed=completed,
            )

        def _label(spec: RunSpec) -> str:
            pair = by_digest.get(spec.digest)
            if pair is None:
                return spec.describe()
            return f"({pair[0]}, {pair[1]})"

        outcomes, quarantined = run_specs_resilient(
            specs,
            jobs=jobs,
            metrics=self.metrics,
            policy=self.retry,
            describe=_label,
            on_complete=_checkpoint,
        )
        for digest, record in quarantined.items():
            self.quarantined[digest] = record
            self.metrics.counter("campaign.quarantined").inc()
            if self.journal is not None:
                bench, config = by_digest[digest]
                self.journal.record_quarantined(
                    digest, bench, config,
                    attempts=record.attempts, error=record.error,
                )
        self._emit_beacon(
            "done", runs_total=runs_total, runs_completed=completed
        )
        return len(outcomes)

    def _check_quarantine(self, bench: str, config: str) -> None:
        record = self.quarantined.get(self.spec_for(bench, config).digest)
        if record is not None:
            raise ExperimentError(
                f"run ({bench}, {config}) is quarantined after "
                f"{record.attempts} failed attempts: {record.error} — "
                f"clear with Campaign.clear_quarantine() or set "
                f"{RETRY_QUARANTINED_ENV}=1 to retry it"
            )

    def solo(self, bench: str) -> RunSummary:
        """The benchmark running alone on the chip."""
        cached = self._load(bench, "solo")
        if cached is not None:
            return cached
        self._check_quarantine(bench, "solo")
        summary = produce_summary(self.settings, bench, "solo")
        self._store(summary)
        self.metrics.counter("campaign.runs_simulated").inc()
        return summary

    def colocated(self, bench: str, config: str) -> RunSummary:
        """The benchmark co-located with lbm under ``config``."""
        if config not in CONFIGS:
            raise ExperimentError(
                f"config must be one of {CONFIGS}, got {config!r}"
            )
        cached = self._load(bench, config)
        if cached is not None:
            return cached
        self._check_quarantine(bench, config)
        summary = produce_summary(self.settings, bench, config)
        self._store(summary)
        self.metrics.counter("campaign.runs_simulated").inc()
        return summary

    # -- derived metrics --------------------------------------------------

    def slowdown(self, bench: str, config: str) -> float:
        """Completion-time ratio of ``config`` vs. solo."""
        solo = self.solo(bench)
        colo = self.colocated(bench, config)
        return colo.completion_periods / solo.completion_periods

    def penalty(self, bench: str, config: str) -> float:
        """Cross-core interference penalty of ``config`` vs. solo."""
        return self.slowdown(bench, config) - 1.0

    def quarantine_report(self) -> list[QuarantineRecord]:
        """Every quarantined spec, sorted by label (for the report)."""
        return sorted(
            self.quarantined.values(), key=lambda r: (r.label, r.digest)
        )

    def clear_quarantine(self) -> int:
        """Lift every quarantine (journalled); returns how many."""
        count = len(self.quarantined)
        if self.journal is not None:
            for digest in list(self.quarantined):
                self.journal.record_cleared(digest)
        self.quarantined.clear()
        return count

    def memoised_runs(self) -> int:
        """Number of run summaries currently memoised in this process."""
        return len(self._memory)

    def total_wall_seconds(self) -> float:
        """Wall-clock simulation time across every memoised run.

        Runs served from a pre-timing disk cache contribute 0.0.
        """
        return sum(s.wall_seconds for s in self._memory.values())

    def timing_coverage(self) -> tuple[int, int]:
        """``(timed, total)`` memoised runs.

        ``timed`` counts summaries carrying a real ``wall_seconds``
        measurement; cached entries written before run timing existed
        (same cache epoch, older code) deserialise as 0.0 and are *not*
        timed — reports must render those as "n/a", never as 0.0 s.
        """
        timed = sum(
            1 for s in self._memory.values() if s.wall_seconds > 0.0
        )
        return timed, len(self._memory)

    def telemetry_snapshots(self) -> list[dict]:
        """Per-run telemetry of every memoised run that carries one.

        Iterates over a point-in-time copy of the memo table, so the
        exporter's serving thread can call this while ``prefetch`` is
        checkpointing new summaries into it.
        """
        return [
            s.telemetry for s in list(self._memory.values())
            if s.telemetry is not None
        ]

    # -- live telemetry ---------------------------------------------------

    def _emit_beacon(
        self, state: str, runs_total: int, runs_completed: int
    ) -> None:
        """Drop the ``campaign`` beacon (no-op without a beacon dir)."""
        directory = beacon_dir()
        if directory is None:
            return
        write_beacon(
            directory,
            "campaign",
            {
                "state": state,
                "runs_total": runs_total,
                "runs_completed": runs_completed,
                "runs_cached": len(self._memory),
                "quarantined": len(self.quarantined),
                "cache_tag": self.settings.cache_tag(),
            },
        )

    def export_snapshot(self) -> dict[str, dict]:
        """One merged metrics snapshot for the live ``/metrics`` endpoint.

        Folds together, in merge order: the campaign-level registry
        (cache counters, ``campaign.runs_simulated``, executor spans),
        every memoised run's telemetry registry (detector verdicts,
        tier gauges, profiling spans — counters and histograms add
        across runs), and the beacon fragment from any live workers.
        Thread-safe to call from the exporter's serving thread: it only
        reads snapshots and beacon files.
        """
        snapshots: list[dict[str, dict]] = [self.metrics.snapshot()]
        for telemetry in self.telemetry_snapshots():
            metrics = telemetry.get("metrics")
            if isinstance(metrics, dict):
                snapshots.append(metrics)
        directory = beacon_dir()
        if directory is not None:
            beacons, invalid = scan_beacons(directory)
            snapshots.append(
                merge_beacon_metrics(beacons, invalid=invalid)
            )
        return merge_snapshots(snapshots)
