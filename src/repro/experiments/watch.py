"""``repro-caer watch``: in-flight campaign health from beacons.

A campaign run with ``REPRO_BEACON_DIR`` set (the CLI defaults it when
the live exporter is enabled) drops a ``campaign`` beacon at every
checkpoint and per-worker beacons at every task edge.  ``watch`` reads
those files from *any* process — it never touches the task queues or
the campaign cache — and renders a one-screen status: run progress,
per-worker state, detector counters, staleness.

Two modes: ``--once`` prints a single snapshot and exits (0 when
beacons were found, 1 when not — scriptable for CI smoke jobs), while
the default loop redraws until the campaign beacon reports ``done`` or
every beacon goes stale.
"""

from __future__ import annotations

import io
import os
import time

from ..obs.heartbeat import (
    BEACON_DIR_ENV,
    STALE_SECONDS,
    beacon_age,
    beacon_field,
    scan_beacons,
)

#: Where ``watch`` looks when ``REPRO_BEACON_DIR`` is unset: the same
#: default the CLI exporter wiring uses.
DEFAULT_BEACON_DIR = "results/beacons"

#: Redraw cadence of the live loop, seconds.
WATCH_INTERVAL = 1.0


def resolve_beacon_dir(directory: str | None = None) -> str:
    """The directory ``watch`` should read, explicit > env > default."""
    if directory:
        return directory
    return os.environ.get(BEACON_DIR_ENV) or DEFAULT_BEACON_DIR


def _kind(payload: dict) -> str:
    kind = payload.get("beacon", "")
    return kind if isinstance(kind, str) else ""


def collect_status(directory: str, now: float | None = None) -> dict:
    """Read beacons and classify them into a status dict.

    Corrupt or torn beacon files are skipped and surfaced as
    ``invalid`` — a sick writer degrades the display, never crashes
    the watcher.
    """
    beacons, invalid = scan_beacons(directory)
    now = now if now is not None else time.time()
    campaign = beacons.get("campaign")
    fleet = beacons.get("fleet")
    workers = {
        name: payload
        for name, payload in sorted(beacons.items())
        if _kind(payload).startswith("worker")
    }
    nodes = {
        name: payload
        for name, payload in sorted(beacons.items())
        if _kind(payload).startswith("node-")
    }
    stale = all(
        beacon_age(p, now) > STALE_SECONDS for p in beacons.values()
    ) if beacons else False
    done_beacon = campaign if campaign is not None else fleet
    return {
        "directory": directory,
        "now": now,
        "campaign": campaign,
        "fleet": fleet,
        "workers": workers,
        "nodes": nodes,
        "invalid": invalid,
        "any": bool(beacons),
        "all_stale": stale,
        "done": bool(done_beacon) and done_beacon.get("state") == "done",
    }


def _age_text(payload: dict, now: float) -> str:
    age = beacon_age(payload, now)
    if age == float("inf"):
        return "age n/a"
    marker = " STALE" if age > STALE_SECONDS else ""
    return f"{age:.0f}s ago{marker}"


def render_watch(status: dict) -> str:
    """One screenful of campaign health from a status dict."""
    out = io.StringIO()
    now = status["now"]
    if not status["any"]:
        out.write(
            f"no beacons under {status['directory']} — start a campaign "
            f"with {BEACON_DIR_ENV} set (or REPRO_METRICS_PORT, which "
            f"defaults it)\n"
        )
        if status["invalid"]:
            out.write(
                f"{status['invalid']} corrupt beacon file(s) skipped\n"
            )
        return out.getvalue()
    campaign = status["campaign"]
    if campaign is not None:
        total = beacon_field(campaign, "runs_total")
        completed = beacon_field(campaign, "runs_completed")
        bar = ""
        if total:
            filled = int(round(20 * min(1.0, completed / total)))
            bar = f" [{'#' * filled}{'.' * (20 - filled)}]"
        out.write(
            f"campaign {campaign.get('cache_tag', '?')} "
            f"{campaign.get('state', '?')}: "
            f"{completed:.0f}/{total:.0f} runs this prefetch{bar} "
            f"({beacon_field(campaign, 'runs_cached'):.0f} cached, "
            f"{beacon_field(campaign, 'quarantined'):.0f} quarantined) "
            f"— {_age_text(campaign, now)}\n"
        )
    elif not status["fleet"]:
        out.write("campaign beacon absent (workers only)\n")
    fleet = status["fleet"]
    if fleet is not None:
        out.write(
            f"fleet {fleet.get('state', '?')}: "
            f"tick {beacon_field(fleet, 'tick'):.0f}, "
            f"{beacon_field(fleet, 'jobs_done'):.0f}"
            f"/{beacon_field(fleet, 'jobs_total'):.0f} jobs done "
            f"({beacon_field(fleet, 'jobs_waiting'):.0f} waiting, "
            f"{beacon_field(fleet, 'migrations'):.0f} migrations, "
            f"{beacon_field(fleet, 'nodes_dead'):.0f} dead, "
            f"{beacon_field(fleet, 'nodes_quarantined'):.0f} "
            f"quarantined) — {_age_text(fleet, now)}\n"
        )
    nodes = status["nodes"]
    if nodes:
        out.write(f"nodes: {len(nodes)} reporting\n")
        for name, payload in nodes.items():
            flags = []
            if beacon_field(payload, "contended"):
                flags.append("CONTENDED")
            if beacon_field(payload, "straggler"):
                flags.append("straggler")
            out.write(
                f"  {name:<10} "
                f"jobs={beacon_field(payload, 'jobs_running'):.0f} "
                f"tick={beacon_field(payload, 'tick'):.0f} "
                f"{' '.join(flags):<20} "
                f"— {_age_text(payload, now)}\n"
            )
    workers = status["workers"]
    if workers:
        running = sum(
            1 for p in workers.values() if p.get("state") == "running"
        )
        out.write(f"workers: {len(workers)} alive, {running} running\n")
        for name, payload in workers.items():
            digest = payload.get("digest")
            doing = (
                f"running {str(digest)[:12]}"
                if payload.get("state") == "running" and digest
                else "idle"
            )
            out.write(
                f"  {name:<10} {doing:<21} "
                f"done={beacon_field(payload, 'tasks_completed'):.0f} "
                f"failed={beacon_field(payload, 'tasks_failed'):.0f} "
                f"reused={beacon_field(payload, 'reused_dispatches'):.0f} "
                f"verdicts={beacon_field(payload, 'detector_verdicts'):.0f} "
                f"(+{beacon_field(payload, 'detector_positives'):.0f}) "
                f"— {_age_text(payload, now)}\n"
            )
    if status["invalid"]:
        out.write(
            f"{status['invalid']} corrupt beacon file(s) skipped\n"
        )
    if status["all_stale"]:
        out.write(
            f"all beacons older than {STALE_SECONDS:.0f}s — the "
            f"campaign has likely exited\n"
        )
    return out.getvalue()


def watch_once(directory: str | None = None) -> int:
    """Print one status snapshot; exit code 0 iff beacons were found."""
    status = collect_status(resolve_beacon_dir(directory))
    print(render_watch(status), end="")
    return 0 if status["any"] else 1


def watch_loop(
    directory: str | None = None,
    interval: float = WATCH_INTERVAL,
    max_iterations: int | None = None,
) -> int:
    """Redraw status until the campaign finishes or beacons go stale.

    Exits 0 on a clean ``done`` beacon, 1 when beacons never appeared
    or everything went stale.  ``max_iterations`` bounds the loop for
    tests; interactive use runs until done/stale/Ctrl-C.
    """
    resolved = resolve_beacon_dir(directory)
    iterations = 0
    misses = 0
    try:
        while True:
            status = collect_status(resolved)
            text = render_watch(status)
            # Clear + home when a TTY, plain append otherwise (logs).
            if os.isatty(1):
                print("\x1b[2J\x1b[H" + text, end="", flush=True)
            else:
                print(text, end="", flush=True)
            iterations += 1
            if status["done"]:
                return 0
            if status["any"]:
                misses = 0
            else:
                misses += 1
                if misses * interval > STALE_SECONDS:
                    return 1
            if status["all_stale"]:
                return 1
            if max_iterations is not None and iterations >= max_iterations:
                return 0 if status["any"] else 1
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
