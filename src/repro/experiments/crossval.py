"""Cross-validation: independent models against the trace simulator.

Two comparisons live here, both over *identical* run descriptions:

* :func:`analytic_figure1` — the closed-form predictor
  (:mod:`repro.analytic`) against the simulator's Figure 1 slowdowns;
* :func:`backend_crossval` — the two execution backends against each
  other: every spec is executed once on ``"sim"`` and once on
  ``"statistical"``, with only the spec's ``backend`` field differing,
  so any disagreement is attributable to the engines alone.

A predictor (or cheap engine) is useful exactly to the degree it ranks
the benchmarks the same way and lands in the same bands.
"""

from __future__ import annotations

from ..analytic.predictor import predict_colocation_phased
from ..workloads import benchmark, benchmark_names
from .campaign import BATCH_BENCHMARK, Campaign, CampaignSettings
from .executor import run_specs
from .reporting import FigureTable

#: The victims the backend comparison measures (a sensitivity spread).
CROSSVAL_VICTIMS = ("429.mcf", "462.libquantum", "473.astar", "444.namd")


def rank_correlation(xs: list[float], ys: list[float]) -> float:
    """Spearman rank correlation (ties broken by input order)."""

    def ranks(values: list[float]) -> list[float]:
        order = sorted(range(len(values)), key=lambda i: values[i])
        out = [0.0] * len(values)
        for rank, i in enumerate(order):
            out[i] = float(rank)
        return out

    rx, ry = ranks(xs), ranks(ys)
    n = len(xs)
    mean = (n - 1) / 2
    cov = sum((a - mean) * (b - mean) for a, b in zip(rx, ry))
    var = sum((a - mean) ** 2 for a in rx)
    return cov / var if var else 0.0


def analytic_figure1(campaign: Campaign) -> FigureTable:
    """Predicted vs. simulated slowdown next to lbm, per benchmark."""
    machine = campaign.settings.machine()
    l3 = machine.l3.capacity_lines
    contender = benchmark(BATCH_BENCHMARK, l3)
    rows = list(benchmark_names())
    table = FigureTable(
        title="Cross-validation: analytic vs. simulated slowdown "
              "(next to lbm)",
        row_names=rows,
    )
    predicted = [
        predict_colocation_phased(
            benchmark(name, l3), contender, machine
        )
        for name in rows
    ]
    simulated = [campaign.slowdown(name, "raw") for name in rows]
    table.add_column("predicted", predicted)
    table.add_column("simulated", simulated)
    table.add_column(
        "error",
        [p / s - 1.0 for p, s in zip(predicted, simulated)],
    )
    table.notes.append(
        f"spearman rank correlation: "
        f"{rank_correlation(predicted, simulated):.2f}"
    )
    return table


def backend_crossval(
    settings: CampaignSettings | None = None,
    victims: tuple[str, ...] = CROSSVAL_VICTIMS,
    jobs: int | None = None,
) -> FigureTable:
    """Sim vs. statistical slowdown next to lbm, over identical specs.

    For every victim, the solo and raw-co-location specs are built once
    and executed on both backends via
    :meth:`~repro.runspec.RunSpec.with_backend` — the digests differ
    *only* in the backend field, making this a pure engine comparison.
    """
    settings = settings or CampaignSettings.from_env()

    base_specs = []
    for victim in victims:
        base_specs.append(settings.run_spec(victim, "solo"))
        base_specs.append(settings.run_spec(victim, "raw"))
    specs = [
        spec.with_backend(backend)
        for spec in base_specs
        for backend in ("sim", "statistical")
    ]
    outcomes = run_specs(specs, jobs=jobs)

    def slowdown(victim_index: int, backend_index: int) -> float:
        # Layout: per base spec, [sim, statistical]; per victim,
        # [solo, raw] — so victim v's solo on backend b sits at
        # 4 * v + b and its raw run at 4 * v + 2 + b.
        solo = outcomes[4 * victim_index + backend_index]
        raw = outcomes[4 * victim_index + 2 + backend_index]
        return raw.completion_periods / solo.completion_periods

    sim = [slowdown(v, 0) for v in range(len(victims))]
    stat = [slowdown(v, 1) for v in range(len(victims))]
    table = FigureTable(
        title="Cross-validation: sim vs. statistical backend "
              "(slowdown next to lbm)",
        row_names=list(victims),
    )
    table.add_column("sim_slowdown", sim)
    table.add_column("stat_slowdown", stat)
    table.add_column(
        "error", [s / m - 1.0 for s, m in zip(stat, sim)]
    )
    table.notes.append(
        f"spearman rank correlation: "
        f"{rank_correlation(sim, stat):.2f}"
    )
    return table
