"""Cross-validation: the analytical model against the simulator.

The analytical package (:mod:`repro.analytic`) predicts co-location
slowdowns from reuse-distance profiles in closed form.  This experiment
predicts the whole Figure 1 — every SPEC model's slowdown next to lbm —
and compares it against the trace-driven simulator's measurements: the
predictor is useful exactly to the degree it ranks the benchmarks the
same way and lands in the same bands.
"""

from __future__ import annotations

from ..analytic.predictor import predict_colocation_phased
from ..workloads import benchmark, benchmark_names
from .campaign import BATCH_BENCHMARK, Campaign
from .reporting import FigureTable


def rank_correlation(xs: list[float], ys: list[float]) -> float:
    """Spearman rank correlation (ties broken by input order)."""

    def ranks(values: list[float]) -> list[float]:
        order = sorted(range(len(values)), key=lambda i: values[i])
        out = [0.0] * len(values)
        for rank, i in enumerate(order):
            out[i] = float(rank)
        return out

    rx, ry = ranks(xs), ranks(ys)
    n = len(xs)
    mean = (n - 1) / 2
    cov = sum((a - mean) * (b - mean) for a, b in zip(rx, ry))
    var = sum((a - mean) ** 2 for a in rx)
    return cov / var if var else 0.0


def analytic_figure1(campaign: Campaign) -> FigureTable:
    """Predicted vs. simulated slowdown next to lbm, per benchmark."""
    machine = campaign.settings.machine()
    l3 = machine.l3.capacity_lines
    contender = benchmark(BATCH_BENCHMARK, l3)
    rows = list(benchmark_names())
    table = FigureTable(
        title="Cross-validation: analytic vs. simulated slowdown "
              "(next to lbm)",
        row_names=rows,
    )
    predicted = [
        predict_colocation_phased(
            benchmark(name, l3), contender, machine
        )
        for name in rows
    ]
    simulated = [campaign.slowdown(name, "raw") for name in rows]
    table.add_column("predicted", predicted)
    table.add_column("simulated", simulated)
    table.add_column(
        "error",
        [p / s - 1.0 for p, s in zip(predicted, simulated)],
    )
    table.notes.append(
        f"spearman rank correlation: "
        f"{rank_correlation(predicted, simulated):.2f}"
    )
    return table
