"""Experiment harness: campaigns, figures, ablations, reporting.

Each of the paper's evaluation artefacts (Figures 1-3 and 6-10, plus
the headline numbers quoted in §1/§6) has a driver in
:mod:`repro.experiments.figures`; shared simulation runs are produced
and memoised by :class:`repro.experiments.campaign.Campaign` so that,
e.g., Figures 6, 7, and 8 — which analyse the same runs three ways —
only simulate once.
"""

from .ablations import ABLATIONS, AblationRunner, run_ablation
from .crossval import analytic_figure1, backend_crossval, rank_correlation
from .campaign import (
    Campaign,
    CampaignSettings,
    RunSummary,
    audit_cache_key,
    produce_summary,
)
from .executor import fan_out, resolve_jobs, run_many, run_specs
from .faults import fault_sweep
from .fleetchaos import chaos_frontier
from .resilience import (
    CampaignJournal,
    QuarantineRecord,
    RetryPolicy,
    run_specs_resilient,
)
from .figures import (
    figure1,
    figure2,
    figure3,
    figure3_correlations,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
)
from .headline import HeadlineNumbers, headline_numbers
from .contenders import contender_study
from .repeatability import repeatability_study
from .report import generate_report, write_report
from .scaling import scaling_study
from .shootout import detector_shootout, shootout_config
from .reporting import FigureTable, render_series
from .telemetry import (
    STATS_FORMATS,
    campaign_stats,
    campaign_stats_data,
    render_timeline,
    trace_run,
)
from .watch import collect_status, render_watch, watch_loop, watch_once

__all__ = [
    "Campaign",
    "CampaignSettings",
    "RunSummary",
    "audit_cache_key",
    "produce_summary",
    "fan_out",
    "resolve_jobs",
    "run_many",
    "run_specs",
    "run_specs_resilient",
    "RetryPolicy",
    "QuarantineRecord",
    "CampaignJournal",
    "fault_sweep",
    "chaos_frontier",
    "detector_shootout",
    "shootout_config",
    "FigureTable",
    "render_series",
    "figure1",
    "figure2",
    "figure3",
    "figure3_correlations",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "HeadlineNumbers",
    "headline_numbers",
    "ABLATIONS",
    "AblationRunner",
    "run_ablation",
    "analytic_figure1",
    "backend_crossval",
    "rank_correlation",
    "scaling_study",
    "generate_report",
    "write_report",
    "contender_study",
    "repeatability_study",
    "trace_run",
    "campaign_stats",
    "campaign_stats_data",
    "STATS_FORMATS",
    "render_timeline",
    "collect_status",
    "render_watch",
    "watch_once",
    "watch_loop",
]
