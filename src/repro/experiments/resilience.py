"""Resilient campaign execution: retry, quarantine, checkpoint/resume.

:func:`fan_out` treats any worker failure as fatal to the batch; fine
for unit tests, unacceptable for multi-hour campaigns where one crashed
or hung worker should not discard hours of finished runs.  This module
adds the production posture on top of the same worker unit:

* :class:`RetryPolicy` — bounded attempts, a deterministic backoff
  schedule, and an optional per-run timeout (``REPRO_RETRIES`` /
  ``REPRO_RUN_TIMEOUT``);
* :func:`run_specs_resilient` — round-based fan-out where a failing
  spec is retried on the next round and a persistently failing one is
  *quarantined* (reported, not raised) while every completion is handed
  to the caller immediately via ``on_complete`` — the checkpoint seam;
* :class:`CampaignJournal` — an append-only, fsync-per-record JSONL
  journal of completed/quarantined digests, tolerant of a torn final
  line, giving campaigns crash-safe resume: completed work is never
  re-executed after an interruption.

Chaos mode (:mod:`repro.faults.chaos`) drives all of this in tests by
sabotaging the worker unit on purpose.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..errors import ConfigError
from ..faults.chaos import maybe_inject
from ..obs import MetricsRegistry
from ..runspec import RunOutcome, RunSpec
from .executor import _execute_spec, resolve_jobs
from .workerpool import WorkerFailure, get_pool, warm_pool_enabled

#: Environment overrides for :meth:`RetryPolicy.from_env`.
RETRIES_ENV = "REPRO_RETRIES"
RUN_TIMEOUT_ENV = "REPRO_RUN_TIMEOUT"

#: Default backoff schedule: seconds slept before retry round N+1
#: (clamped to the last entry).  Deterministic on purpose — resilience
#: must not introduce randomness into campaign behaviour.
DEFAULT_BACKOFF = (0.0, 0.05, 0.2)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the executor tries before quarantining a spec."""

    max_attempts: int = 3
    backoff: tuple[float, ...] = DEFAULT_BACKOFF
    #: per-run wall-clock timeout in seconds; enforced only on the
    #: parallel path (a serial caller cannot preempt its own process)
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if any(delay < 0 for delay in self.backoff):
            raise ConfigError(
                f"backoff delays must be >= 0, got {self.backoff}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(
                f"timeout must be > 0, got {self.timeout}"
            )

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """The default policy with environment overrides applied."""
        attempts = os.environ.get(RETRIES_ENV)
        timeout = os.environ.get(RUN_TIMEOUT_ENV)
        kwargs: dict = {}
        if attempts is not None:
            try:
                kwargs["max_attempts"] = int(attempts)
            except ValueError:
                raise ConfigError(
                    f"{RETRIES_ENV} must be an integer, got {attempts!r}"
                ) from None
        if timeout is not None:
            try:
                kwargs["timeout"] = float(timeout)
            except ValueError:
                raise ConfigError(
                    f"{RUN_TIMEOUT_ENV} must be a float, got {timeout!r}"
                ) from None
        return cls(**kwargs)

    def delay_before(self, attempt: int) -> float:
        """Seconds slept before ``attempt`` (attempt 2 = first retry)."""
        if attempt <= 1 or not self.backoff:
            return 0.0
        return self.backoff[min(attempt - 2, len(self.backoff) - 1)]


@dataclass(frozen=True)
class QuarantineRecord:
    """One spec the executor gave up on."""

    digest: str
    label: str
    attempts: int
    error: str


def _execute_spec_attempt(task: tuple[RunSpec, int]) -> RunOutcome:
    """The resilient worker unit: chaos hook, then the real execution."""
    spec, attempt = task
    maybe_inject(spec, attempt)
    return _execute_spec(spec)


def run_specs_resilient(
    specs: list[RunSpec],
    jobs: int | None = None,
    metrics: MetricsRegistry | None = None,
    policy: RetryPolicy | None = None,
    describe: Callable[[RunSpec], str] | None = None,
    on_complete: Callable[[RunSpec, RunOutcome, int], None] | None = None,
) -> tuple[dict[str, RunOutcome], dict[str, QuarantineRecord]]:
    """Execute specs with bounded retry; failures quarantine, not raise.

    Returns ``(outcomes, quarantined)``, both keyed by spec digest
    (duplicate digests in ``specs`` are executed once).  A spec that
    fails an attempt is retried on the next round after the policy's
    backoff; one that exhausts every attempt lands in ``quarantined``
    with its last error.  ``on_complete(spec, outcome, attempt)`` fires
    in the calling process the moment each spec finishes — the caller's
    checkpoint seam, so an interruption loses at most the in-flight
    work.  A per-run ``policy.timeout`` abandons stragglers (parallel
    path only; the wedged worker is left behind rather than awaited).
    :exc:`KeyboardInterrupt` cancels all unstarted work and propagates —
    everything already checkpointed stays checkpointed.

    Metrics: ``executor.attempts`` (one per spec-attempt),
    ``executor.retries`` (failed attempts that will be retried), and
    ``executor.quarantined``.
    """
    policy = policy if policy is not None else RetryPolicy.from_env()
    describe = describe or RunSpec.describe
    jobs = resolve_jobs(jobs)
    pending: list[RunSpec] = []
    seen: set[str] = set()
    for spec in specs:
        if spec.digest not in seen:
            seen.add(spec.digest)
            pending.append(spec)
    outcomes: dict[str, RunOutcome] = {}
    errors: dict[str, str] = {}
    for attempt in range(1, policy.max_attempts + 1):
        if not pending:
            break
        delay = policy.delay_before(attempt)
        if delay:
            time.sleep(delay)
        if jobs == 1 or len(pending) == 1:
            failed = _serial_round(
                pending, attempt, outcomes, errors, on_complete, metrics
            )
        else:
            failed = _parallel_round(
                pending, attempt, jobs, policy, outcomes, errors,
                on_complete, metrics,
            )
        if failed and attempt < policy.max_attempts and metrics is not None:
            metrics.counter("executor.retries").inc(len(failed))
        pending = failed
    quarantined = {
        spec.digest: QuarantineRecord(
            digest=spec.digest,
            label=describe(spec),
            attempts=policy.max_attempts,
            error=errors.get(spec.digest, "unknown failure"),
        )
        for spec in pending
    }
    if quarantined and metrics is not None:
        metrics.counter("executor.quarantined").inc(len(quarantined))
    return outcomes, quarantined


def _serial_round(
    pending: list[RunSpec],
    attempt: int,
    outcomes: dict[str, RunOutcome],
    errors: dict[str, str],
    on_complete: Callable[[RunSpec, RunOutcome, int], None] | None,
    metrics: MetricsRegistry | None,
) -> list[RunSpec]:
    failed: list[RunSpec] = []
    for spec in pending:
        if metrics is not None:
            metrics.counter("executor.attempts").inc()
        try:
            outcome = _execute_spec_attempt((spec, attempt))
        except Exception as exc:
            errors[spec.digest] = repr(exc)
            failed.append(spec)
        else:
            outcomes[spec.digest] = outcome
            if on_complete is not None:
                on_complete(spec, outcome, attempt)
    return failed


def _parallel_round(
    pending: list[RunSpec],
    attempt: int,
    jobs: int,
    policy: RetryPolicy,
    outcomes: dict[str, RunOutcome],
    errors: dict[str, str],
    on_complete: Callable[[RunSpec, RunOutcome, int], None] | None,
    metrics: MetricsRegistry | None,
) -> list[RunSpec]:
    if warm_pool_enabled():
        return _warm_round(
            pending, attempt, jobs, policy, outcomes, errors,
            on_complete, metrics,
        )
    failed: list[RunSpec] = []
    abandoned = False
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(pending)))
    try:
        if metrics is not None:
            metrics.counter("executor.attempts").inc(len(pending))
        futures = [
            (spec, pool.submit(_execute_spec_attempt, (spec, attempt)))
            for spec in pending
        ]
        for spec, future in futures:
            try:
                outcome = future.result(timeout=policy.timeout)
            except FuturesTimeout:
                errors[spec.digest] = (
                    f"timed out after {policy.timeout:g}s"
                )
                failed.append(spec)
                future.cancel()
                # The worker may be wedged; don't await it on shutdown.
                abandoned = True
            except CancelledError:
                errors[spec.digest] = "cancelled before it started"
                failed.append(spec)
            except Exception as exc:
                errors[spec.digest] = repr(exc)
                failed.append(spec)
            else:
                outcomes[spec.digest] = outcome
                if on_complete is not None:
                    on_complete(spec, outcome, attempt)
    except BaseException:
        # KeyboardInterrupt (or a checkpoint failure): cancel every
        # queued task and leave without waiting, so no orphan worker
        # outlives the batch and the checkpointed prefix is preserved.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=not abandoned, cancel_futures=abandoned)
    return failed


def _warm_round(
    pending: list[RunSpec],
    attempt: int,
    jobs: int,
    policy: RetryPolicy,
    outcomes: dict[str, RunOutcome],
    errors: dict[str, str],
    on_complete: Callable[[RunSpec, RunOutcome, int], None] | None,
    metrics: MetricsRegistry | None,
) -> list[RunSpec]:
    """One retry round on the persistent pool — same contract as cold.

    Timeouts keep their failure identity (``timed out after Ns``), but
    the enforcement improves: the pool kills and respawns exactly the
    wedged worker instead of abandoning a whole
    :class:`~concurrent.futures.ProcessPoolExecutor`, and a worker
    that dies mid-run (chaos ``die``) fails only its own spec.
    ``on_complete`` fires the moment each spec settles, preserving the
    checkpoint seam.
    """
    pool = get_pool(jobs)
    if metrics is not None:
        metrics.counter("executor.attempts").inc(len(pending))
    by_key = {spec.digest: spec for spec in pending}

    def on_result(key: object, value: object, _span: float) -> None:
        if isinstance(value, WorkerFailure):
            return
        spec = by_key[key]
        outcomes[spec.digest] = value
        if on_complete is not None:
            on_complete(spec, value, attempt)

    results = pool.map_specs(
        [(spec.digest, spec, attempt) for spec in pending],
        timeout=policy.timeout,
        on_result=on_result,
    )
    failed: list[RunSpec] = []
    for spec in pending:
        value = results[spec.digest]
        if isinstance(value, WorkerFailure):
            if value.timed_out:
                errors[spec.digest] = (
                    f"timed out after {policy.timeout:g}s"
                )
            else:
                errors[spec.digest] = value.describe()
            failed.append(spec)
    if metrics is not None:
        metrics.gauge("executor.worker_reuse").set(pool.last_batch_reuse)
    return failed


class CampaignJournal:
    """Append-only JSONL record of campaign completions (crash-safe).

    Each line is one self-contained record —
    ``{"status": "done"|"quarantined"|"cleared", "digest": ..., ...}``
    — flushed and fsynced as it is written, so a crash can tear at most
    the final line; :meth:`_load` skips unparseable lines silently.
    Later records win: a ``done`` clears an earlier ``quarantined`` for
    the same digest and vice versa, and ``cleared`` lifts a quarantine.
    Records carry no wall-clock values, keeping journals diffable.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        #: digest -> the journal record that marked it completed
        self.completed: dict[str, dict] = {}
        #: digest -> the journal record that quarantined it
        self.quarantined: dict[str, dict] = {}
        self._load()

    def _load(self) -> None:
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a crash mid-append
            if not isinstance(record, dict):
                continue
            digest = record.get("digest")
            status = record.get("status")
            if not digest:
                continue
            if status == "done":
                self.completed[digest] = record
                self.quarantined.pop(digest, None)
            elif status == "quarantined":
                self.quarantined[digest] = record
                self.completed.pop(digest, None)
            elif status == "cleared":
                self.quarantined.pop(digest, None)

    def _append(self, record: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(
                json.dumps(record, separators=(",", ":")) + "\n"
            )
            handle.flush()
            os.fsync(handle.fileno())

    def record_done(
        self, digest: str, bench: str, config: str, attempts: int = 1
    ) -> None:
        """Mark one spec's run as completed and cached."""
        record = {
            "status": "done", "digest": digest,
            "bench": bench, "config": config, "attempts": attempts,
        }
        self._append(record)
        self.completed[digest] = record
        self.quarantined.pop(digest, None)

    def record_quarantined(
        self, digest: str, bench: str, config: str,
        attempts: int, error: str,
    ) -> None:
        """Mark one spec as given up on (until cleared)."""
        record = {
            "status": "quarantined", "digest": digest,
            "bench": bench, "config": config,
            "attempts": attempts, "error": error,
        }
        self._append(record)
        self.quarantined[digest] = record
        self.completed.pop(digest, None)

    def record_cleared(self, digest: str) -> None:
        """Lift a quarantine, making the spec runnable again."""
        self._append({"status": "cleared", "digest": digest})
        self.quarantined.pop(digest, None)
