"""Telemetry drivers behind ``repro-caer trace`` and ``repro-caer stats``.

``trace`` is the single-run microscope: simulate one (benchmark,
configuration) pair with a JSONL sink attached and report what the
decision trace contains.  ``stats`` is the campaign-level view: walk
the cached run summaries for the current settings and aggregate their
telemetry snapshots without simulating anything.
"""

from __future__ import annotations

import io
from pathlib import Path

from ..errors import ExperimentError
from ..obs import JSONLSink, MetricsRegistry, Tracer
from ..runspec import execute
from ..workloads import benchmark_names
from .campaign import (
    CONFIGS,
    Campaign,
    CampaignSettings,
    derive_telemetry,
)

#: Every config ``trace`` accepts: solo plus the co-location matrix.
TRACE_CONFIGS = ("solo",) + CONFIGS


def trace_run(
    settings: CampaignSettings,
    bench: str,
    config: str,
    output: str | Path,
) -> dict:
    """Execute one run with a JSONL decision trace attached.

    The run is described as a :class:`~repro.runspec.RunSpec` and
    executed through the settings' backend, so the trace opens with a
    ``run_spec`` event carrying the spec's digest — the same digest the
    campaign cache and run telemetry use.  Returns a plain-dict report:
    the trace path, the spec identity, the run's period count, per-kind
    event counts, and the derived telemetry scalars.  Raises
    :class:`ExperimentError` (or
    :class:`~repro.errors.UnknownBenchmarkError` from the workload
    registry) for unknown names — the CLI turns those into one-line
    messages.
    """
    if config not in TRACE_CONFIGS:
        raise ExperimentError(
            f"config must be one of {', '.join(TRACE_CONFIGS)}; "
            f"got {config!r}"
        )
    spec = settings.run_spec(bench, config)
    output = Path(output)
    metrics = MetricsRegistry()
    with Tracer([JSONLSink(output)]) as tracer:
        result = execute(spec, tracer=tracer, metrics=metrics)
        counts = dict(tracer.counts)
    return {
        "bench": bench,
        "config": config,
        "digest": spec.digest,
        "backend": spec.backend,
        "path": str(output),
        "periods": result.total_periods,
        "events": counts,
        "total_events": sum(counts.values()),
        "telemetry": derive_telemetry(metrics)["derived"],
    }


def render_trace_report(report: dict) -> str:
    """Human-readable summary of a :func:`trace_run` report."""
    out = io.StringIO()
    out.write(
        f"trace of {report['bench']} under {report['config']}: "
        f"{report['total_events']} events over "
        f"{report['periods']} periods -> {report['path']}\n"
    )
    if report.get("digest"):
        out.write(
            f"  spec {report['digest'][:12]} "
            f"(backend {report.get('backend', 'sim')})\n"
        )
    for kind in sorted(report["events"]):
        out.write(f"  {kind:<12} {report['events'][kind]:>8}\n")
    derived = report["telemetry"]
    if derived.get("verdicts"):
        out.write(
            f"  verdicts: {derived['verdicts']:.0f}, trigger rate "
            f"{derived['detector_trigger_rate']:.0%}, batch ran "
            f"{derived['batch_run_fraction']:.0%} of periods\n"
        )
    return out.getvalue()


def campaign_stats(campaign: Campaign) -> str:
    """Summarise cached telemetry for the campaign's settings.

    Reads only the memory/disk cache — nothing is simulated — so the
    numbers describe whatever earlier invocations left behind.
    """
    available: dict[str, list] = {c: [] for c in TRACE_CONFIGS}
    for bench in benchmark_names():
        for config in TRACE_CONFIGS:
            summary = campaign._load(bench, config)
            if summary is not None:
                available[config].append(summary)
    cached = sum(len(v) for v in available.values())
    total = len(benchmark_names()) * len(TRACE_CONFIGS)
    out = io.StringIO()
    out.write(
        f"campaign {campaign.settings.cache_tag()}: {cached}/{total} "
        f"runs cached\n"
    )
    if not cached:
        out.write(
            "no cached runs — run a figure or `repro-caer all` first\n"
        )
        return out.getvalue()
    timed, memoised = campaign.timing_coverage()
    if timed:
        out.write(
            f"simulation wall time: "
            f"{campaign.total_wall_seconds():.1f} s over {timed} timed "
            f"runs ({memoised - timed} n/a)\n"
        )
    else:
        out.write(
            f"simulation wall time: n/a (all {memoised} cached entries "
            f"predate timing)\n"
        )
    header = (
        f"{'config':<8} {'runs':>5} {'telemetry':>9} {'trigger':>8} "
        f"{'run-frac':>9} {'mean-periods':>13}"
    )
    out.write(header + "\n")
    for config in TRACE_CONFIGS:
        summaries = available[config]
        if not summaries:
            continue
        derived = [
            s.telemetry["derived"] for s in summaries
            if s.telemetry is not None
        ]
        caer = [d for d in derived if d.get("verdicts", 0)]
        trigger = (
            f"{sum(d['detector_trigger_rate'] for d in caer) / len(caer):.0%}"
            if caer else "-"
        )
        run_frac = (
            f"{sum(d['batch_run_fraction'] for d in caer) / len(caer):.0%}"
            if caer else "-"
        )
        mean_periods = (
            sum(s.total_periods for s in summaries) / len(summaries)
        )
        out.write(
            f"{config:<8} {len(summaries):>5} {len(derived):>9} "
            f"{trigger:>8} {run_frac:>9} {mean_periods:>13.1f}\n"
        )
    return out.getvalue()
