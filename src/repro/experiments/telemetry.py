"""Telemetry drivers behind ``repro-caer trace``/``stats``/``timeline``.

``trace`` is the single-run microscope: simulate one (benchmark,
configuration) pair with a JSONL sink attached and report what the
decision trace contains.  ``stats`` is the campaign-level view: walk
the cached run summaries for the current settings and aggregate their
telemetry snapshots without simulating anything — as a table, as JSON,
or as the same Prometheus exposition the live endpoint serves.
``timeline`` replays a JSONL trace as a per-period detect→respond
narrative with event-kind and period-range filters.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

from ..errors import ExperimentError
from ..obs import (
    EVENT_KINDS,
    JSONLSink,
    MetricsRegistry,
    Tracer,
    render_prometheus,
)
from ..runspec import execute
from ..workloads import benchmark_names
from .campaign import (
    CONFIGS,
    Campaign,
    CampaignSettings,
    derive_telemetry,
)

#: The configs ``stats`` enumerates from the cache: solo plus the
#: paper's co-location matrix.  (``trace`` additionally accepts any
#: registered detector name — see
#: :func:`repro.runspec.resolve_caer_config`.)
TRACE_CONFIGS = ("solo",) + CONFIGS

#: Output formats ``stats`` can render.
STATS_FORMATS = ("table", "json", "prometheus")


def trace_run(
    settings: CampaignSettings,
    bench: str,
    config: str,
    output: str | Path,
) -> dict:
    """Execute one run with a JSONL decision trace attached.

    The run is described as a :class:`~repro.runspec.RunSpec` and
    executed through the settings' backend, so the trace opens with a
    ``run_spec`` event carrying the spec's digest — the same digest the
    campaign cache and run telemetry use.  Returns a plain-dict report:
    the trace path, the spec identity, the run's period count, per-kind
    event counts, and the derived telemetry scalars.  Raises
    :class:`ExperimentError` (or
    :class:`~repro.errors.UnknownBenchmarkError` from the workload
    registry) for unknown names — the CLI turns those into one-line
    messages.
    """
    # Config validation happens inside the spec build:
    # resolve_caer_config accepts the paper tags plus any registered
    # detector name and raises listing every choice otherwise.
    spec = settings.run_spec(bench, config)
    output = Path(output)
    metrics = MetricsRegistry()
    with Tracer([JSONLSink(output)]) as tracer:
        result = execute(spec, tracer=tracer, metrics=metrics)
        counts = dict(tracer.counts)
    return {
        "bench": bench,
        "config": config,
        "digest": spec.digest,
        "backend": spec.backend,
        "path": str(output),
        "periods": result.total_periods,
        "events": counts,
        "total_events": sum(counts.values()),
        "telemetry": derive_telemetry(metrics)["derived"],
    }


def render_trace_report(report: dict) -> str:
    """Human-readable summary of a :func:`trace_run` report."""
    out = io.StringIO()
    out.write(
        f"trace of {report['bench']} under {report['config']}: "
        f"{report['total_events']} events over "
        f"{report['periods']} periods -> {report['path']}\n"
    )
    if report.get("digest"):
        out.write(
            f"  spec {report['digest'][:12]} "
            f"(backend {report.get('backend', 'sim')})\n"
        )
    for kind in sorted(report["events"]):
        out.write(f"  {kind:<12} {report['events'][kind]:>8}\n")
    derived = report["telemetry"]
    if derived.get("verdicts"):
        out.write(
            f"  verdicts: {derived['verdicts']:.0f}, trigger rate "
            f"{derived['detector_trigger_rate']:.0%}, batch ran "
            f"{derived['batch_run_fraction']:.0%} of periods\n"
        )
    return out.getvalue()


def campaign_stats_data(campaign: Campaign) -> dict:
    """Structured cached-telemetry summary for the campaign's settings.

    Reads only the memory/disk cache — nothing is simulated — so the
    numbers describe whatever earlier invocations left behind.  The
    dict is the single source every ``stats`` output format renders
    from.
    """
    available: dict[str, list] = {c: [] for c in TRACE_CONFIGS}
    for bench in benchmark_names():
        for config in TRACE_CONFIGS:
            summary = campaign._load(bench, config)
            if summary is not None:
                available[config].append(summary)
    cached = sum(len(v) for v in available.values())
    total = len(benchmark_names()) * len(TRACE_CONFIGS)
    timed, memoised = campaign.timing_coverage()
    configs = []
    for config in TRACE_CONFIGS:
        summaries = available[config]
        if not summaries:
            continue
        derived = [
            s.telemetry["derived"] for s in summaries
            if s.telemetry is not None
        ]
        caer = [d for d in derived if d.get("verdicts", 0)]
        configs.append({
            "config": config,
            "runs": len(summaries),
            "with_telemetry": len(derived),
            "trigger_rate": (
                sum(d["detector_trigger_rate"] for d in caer) / len(caer)
                if caer else None
            ),
            "batch_run_fraction": (
                sum(d["batch_run_fraction"] for d in caer) / len(caer)
                if caer else None
            ),
            "mean_periods": (
                sum(s.total_periods for s in summaries) / len(summaries)
            ),
        })
    return {
        "cache_tag": campaign.settings.cache_tag(),
        "cached": cached,
        "total": total,
        "timed_runs": timed,
        "memoised_runs": memoised,
        "wall_seconds": round(campaign.total_wall_seconds(), 3),
        "configs": configs,
    }


def render_stats_table(data: dict) -> str:
    """The classic human-readable ``stats`` table."""
    out = io.StringIO()
    out.write(
        f"campaign {data['cache_tag']}: {data['cached']}/{data['total']} "
        f"runs cached\n"
    )
    if not data["cached"]:
        out.write(
            "no cached runs — run a figure or `repro-caer all` first\n"
        )
        return out.getvalue()
    timed, memoised = data["timed_runs"], data["memoised_runs"]
    if timed:
        out.write(
            f"simulation wall time: "
            f"{data['wall_seconds']:.1f} s over {timed} timed "
            f"runs ({memoised - timed} n/a)\n"
        )
    else:
        out.write(
            f"simulation wall time: n/a (all {memoised} cached entries "
            f"predate timing)\n"
        )
    header = (
        f"{'config':<8} {'runs':>5} {'telemetry':>9} {'trigger':>8} "
        f"{'run-frac':>9} {'mean-periods':>13}"
    )
    out.write(header + "\n")
    for row in data["configs"]:
        trigger = (
            f"{row['trigger_rate']:.0%}"
            if row["trigger_rate"] is not None else "-"
        )
        run_frac = (
            f"{row['batch_run_fraction']:.0%}"
            if row["batch_run_fraction"] is not None else "-"
        )
        out.write(
            f"{row['config']:<8} {row['runs']:>5} "
            f"{row['with_telemetry']:>9} "
            f"{trigger:>8} {run_frac:>9} {row['mean_periods']:>13.1f}\n"
        )
    return out.getvalue()


def campaign_stats(campaign: Campaign, fmt: str = "table") -> str:
    """Render cached campaign telemetry in the requested format.

    ``table`` is the human view; ``json`` dumps
    :func:`campaign_stats_data`; ``prometheus`` renders the campaign's
    merged export snapshot through the same
    :func:`~repro.obs.render_prometheus` the live endpoint serves — so
    ``repro-caer stats --format prometheus`` is a scrape without a
    socket.
    """
    if fmt == "table":
        return render_stats_table(campaign_stats_data(campaign))
    if fmt == "json":
        return json.dumps(campaign_stats_data(campaign), indent=2) + "\n"
    if fmt == "prometheus":
        # Walk the cache first so the export snapshot folds in every
        # cached run's telemetry, not just this invocation's registry.
        campaign_stats_data(campaign)
        return render_prometheus(campaign.export_snapshot())
    raise ExperimentError(
        f"stats format must be one of {', '.join(STATS_FORMATS)}; "
        f"got {fmt!r}"
    )


# -- timeline ----------------------------------------------------------


def _format_timeline_event(record: dict) -> str:
    """One timeline line for one trace-event payload."""
    kind = record.get("kind", "?")
    if kind == "run_spec":
        return (
            f"run_spec   {record.get('victim', '?')} + "
            f"{record.get('contenders', 0)} contenders "
            f"[{record.get('backend', '?')}] "
            f"spec {str(record.get('digest', ''))[:12]}"
        )
    if kind == "pmu_sample":
        return (
            f"pmu        {record.get('process', '?'):<12} "
            f"{record.get('state', '?'):<9} "
            f"misses={record.get('llc_misses', 0)} "
            f"refs={record.get('llc_references', 0)}"
        )
    if kind == "detection":
        verdict = record.get("verdict")
        verdict_text = (
            "-" if verdict is None else ("POSITIVE" if verdict else "negative")
        )
        threshold = record.get("threshold")
        threshold_text = (
            "-" if threshold is None else f"{threshold:.1f}"
        )
        return (
            f"detect     {record.get('detector', '?'):<12} "
            f"{record.get('state', '?'):<11} "
            f"own={record.get('own_misses', 0.0):.1f} "
            f"neigh={record.get('neighbor_misses', 0.0):.1f} "
            f"thr={threshold_text} verdict={verdict_text}"
        )
    if kind == "response":
        quota = record.get("l3_quota")
        directives = [
            f"pause={record.get('pause_batch')}",
            f"speed={record.get('speed', 1.0):g}",
        ]
        if quota is not None:
            directives.append(f"l3_quota={quota:g}")
        if record.get("done"):
            directives.append("done")
        return (
            f"respond    {record.get('response', '?'):<12} "
            + " ".join(directives)
        )
    if kind == "fault":
        return (
            f"fault      {record.get('process', '?'):<12} "
            f"{record.get('fault', '?')} "
            f"magnitude={record.get('magnitude', 0.0):g}"
        )
    if kind == "phase":
        return (
            f"phase      {record.get('scope', '?')}:"
            f"{record.get('subject', '?')} -> {record.get('phase', '?')}"
        )
    return f"{kind:<10} {record!r}"


def render_timeline(
    records: list[dict],
    kinds: tuple[str, ...] | None = None,
    start: int | None = None,
    end: int | None = None,
    limit: int | None = None,
) -> str:
    """Render trace payload dicts as a per-period timeline.

    ``kinds`` keeps only those event kinds (default: everything except
    the high-volume ``pmu_sample``, which you opt into explicitly);
    ``start``/``end`` bound the period range (inclusive); ``limit``
    caps the number of periods printed, reporting how many were
    elided.  Events group under one heading per period, preserving
    file order within the period — the emission order, which for CAER
    periods reads detect → respond.
    """
    if kinds is not None:
        unknown = sorted(set(kinds) - set(EVENT_KINDS))
        if unknown:
            raise ExperimentError(
                f"unknown event kind(s) {', '.join(unknown)} "
                f"(known: {', '.join(EVENT_KINDS)})"
            )
    selected: dict[int, list[dict]] = {}
    total_events = 0
    for record in records:
        kind = record.get("kind")
        if kinds is None:
            if kind == "pmu_sample":
                continue
        elif kind not in kinds:
            continue
        period = record.get("period")
        if not isinstance(period, int):
            continue
        if start is not None and period < start:
            continue
        if end is not None and period > end:
            continue
        selected.setdefault(period, []).append(record)
        total_events += 1
    out = io.StringIO()
    if not selected:
        out.write("no events match the filters\n")
        return out.getvalue()
    periods = sorted(selected)
    shown = periods if limit is None else periods[:limit]
    out.write(
        f"{total_events} events over {len(periods)} periods "
        f"(periods {periods[0]}..{periods[-1]})\n"
    )
    for period in shown:
        out.write(f"period {period}\n")
        for record in selected[period]:
            out.write(f"  {_format_timeline_event(record)}\n")
    if len(shown) < len(periods):
        out.write(
            f"... {len(periods) - len(shown)} more periods elided "
            f"(--limit {len(shown)})\n"
        )
    return out.getvalue()
