"""One driver per evaluation artefact of the paper.

Each ``figureN`` function takes a :class:`~repro.experiments.campaign.Campaign`
(sharing its memoised runs with the other figures), performs exactly the
analysis behind the corresponding published figure, and returns a
:class:`~repro.experiments.reporting.FigureTable` — or, for the
time-series Figure 3, a dict of rendered series — annotated with the
paper's reference values where the text quotes them.
"""

from __future__ import annotations

from ..caer.metrics import accuracy_vs_random, interference_eliminated
from ..workloads import benchmark_names
from . import paperdata
from .campaign import Campaign
from .reporting import FigureTable, render_series

#: Benchmarks whose per-period series Figure 3 shows.
FIGURE3_BENCHMARKS = ("483.xalancbmk", "429.mcf")


def figure1(campaign: Campaign) -> FigureTable:
    """Figure 1: slowdown of each benchmark next to lbm (no runtime)."""
    rows = list(benchmark_names())
    campaign.prefetch(rows, ("solo", "raw"))
    table = FigureTable(
        title="Figure 1: slowdown due to co-location with lbm",
        row_names=rows,
    )
    table.add_column(
        "slowdown", [campaign.slowdown(b, "raw") for b in rows]
    )
    table.add_column(
        "paper", [paperdata.FIGURE1_SLOWDOWN[b] for b in rows]
    )
    table.notes.append(
        "paper: mean 1.17, 'in many cases ... exceeding 30%'"
    )
    return table


def figure2(campaign: Campaign) -> FigureTable:
    """Figure 2: whole-run LLC misses, alone vs. with the contender."""
    rows = list(benchmark_names())
    campaign.prefetch(rows, ("solo", "raw"))
    table = FigureTable(
        title="Figure 2: LLC misses alone vs. with contender",
        row_names=rows,
    )
    alone = [float(campaign.solo(b).ls_total_llc_misses) for b in rows]
    with_contender = [
        float(campaign.colocated(b, "raw").ls_total_llc_misses)
        for b in rows
    ]
    table.add_column("alone", alone)
    table.add_column("with_contender", with_contender)
    table.add_column(
        "increase",
        [
            (w / a - 1.0) if a else 0.0
            for a, w in zip(alone, with_contender)
        ],
    )
    table.notes.append(
        "paper: heavy missers miss more with a contender; the absolute "
        "miss count indicates contention sensitivity"
    )
    return table


def figure3(campaign: Campaign) -> dict[str, str]:
    """Figure 3: per-period LLC misses vs. instructions retired.

    Returns rendered ASCII strip charts keyed by
    ``"<bench>/misses"`` and ``"<bench>/instructions"``; the paper's
    point is the *inverse correlation* between the two series, which
    :func:`figure3_correlations` quantifies.
    """
    campaign.prefetch(FIGURE3_BENCHMARKS, ("solo",))
    charts: dict[str, str] = {}
    for bench in FIGURE3_BENCHMARKS:
        summary = campaign.solo(bench)
        charts[f"{bench}/misses"] = render_series(
            f"{bench}: LLC misses per period", summary.miss_series
        )
        charts[f"{bench}/instructions"] = render_series(
            f"{bench}: instructions retired per period",
            summary.instruction_series,
        )
    return charts


def figure3_correlations(campaign: Campaign) -> FigureTable:
    """Pearson correlation of the two Figure 3 series per benchmark.

    The paper reads "clear and compelling evidence of the inverse
    relationship"; the correlation should be strongly negative.
    """
    campaign.prefetch(FIGURE3_BENCHMARKS, ("solo",))
    table = FigureTable(
        title="Figure 3: correlation(LLC misses, instructions retired)",
        row_names=list(FIGURE3_BENCHMARKS),
    )
    correlations = []
    for bench in FIGURE3_BENCHMARKS:
        summary = campaign.solo(bench)
        correlations.append(
            _pearson(summary.miss_series, summary.instruction_series)
        )
    table.add_column("pearson_r", correlations)
    table.notes.append("paper: strongly inverse (r should be << 0)")
    return table


def figure6(campaign: Campaign) -> FigureTable:
    """Figure 6: interference penalty raw vs. CAER shutter/rule-based."""
    rows = list(benchmark_names())
    campaign.prefetch(rows, ("solo", "raw", "shutter", "rule"))
    table = FigureTable(
        title="Figure 6: execution-time penalty due to cross-core "
              "interference",
        row_names=rows,
    )
    for column, config in (
        ("co-location", "raw"),
        ("caer_shutter", "shutter"),
        ("caer_rule", "rule"),
    ):
        table.add_column(
            column, [campaign.slowdown(b, config) for b in rows]
        )
    table.notes.append(
        "paper means: raw 1.17, shutter 1.06, rule-based 1.04"
    )
    return table


def figure7(campaign: Campaign) -> FigureTable:
    """Figure 7: utilization gained (higher is better)."""
    rows = list(benchmark_names())
    campaign.prefetch(rows, ("shutter", "rule"))
    table = FigureTable(
        title="Figure 7: utilization gained",
        row_names=rows,
    )
    for column, config in (
        ("caer_shutter", "shutter"),
        ("caer_rule", "rule"),
    ):
        table.add_column(
            column,
            [campaign.colocated(b, config).utilization_gained for b in rows],
        )
    table.notes.append(
        "paper means: shutter ~0.60, rule-based ~0.58 "
        "(raw co-location would be 1.0, disallowing co-location 0.0)"
    )
    return table


def figure8(campaign: Campaign) -> FigureTable:
    """Figure 8: share of the interference penalty eliminated."""
    rows = list(benchmark_names())
    campaign.prefetch(rows, ("solo", "raw", "shutter", "rule"))
    table = FigureTable(
        title="Figure 8: cross-core interference eliminated",
        row_names=rows,
    )
    for column, config in (
        ("caer_shutter", "shutter"),
        ("caer_rule", "rule"),
    ):
        values = []
        for bench in rows:
            raw_penalty = campaign.penalty(bench, "raw")
            managed = campaign.penalty(bench, config)
            if raw_penalty <= 0.0:
                # No measurable interference to eliminate: the paper
                # counts these as fully protected.
                values.append(1.0)
            else:
                values.append(
                    interference_eliminated(raw_penalty, managed)
                )
        table.add_column(column, values)
    table.notes.append("higher is better; 1.0 = penalty fully removed")
    return table


def _accuracy_table(
    campaign: Campaign, rows: list[str], title: str
) -> FigureTable:
    campaign.prefetch(rows, ("random", "shutter", "rule"))
    table = FigureTable(title=title, row_names=rows)
    random_util = {
        b: campaign.colocated(b, "random").utilization_gained for b in rows
    }
    for column, config in (
        ("caer_shutter", "shutter"),
        ("caer_rule", "rule"),
    ):
        table.add_column(
            column,
            [
                accuracy_vs_random(
                    campaign.colocated(b, config).utilization_gained,
                    random_util[b],
                )
                for b in rows
            ],
        )
    return table


def figure9(campaign: Campaign) -> FigureTable:
    """Figure 9: utilization gained vs. random, 6 most sensitive apps.

    Negative values mean the heuristic correctly sacrificed more
    utilization than the random baseline for these contention-sensitive
    neighbours (Equation 2).
    """
    table = _accuracy_table(
        campaign,
        list(paperdata.MOST_SENSITIVE),
        "Figure 9: utilization gained relative to random "
        "(6 most sensitive)",
    )
    table.notes.append(
        "paper: negative for sensitive apps; e.g. mcf shutter -0.36, "
        "rule-based -0.80"
    )
    return table


def figure10(campaign: Campaign) -> FigureTable:
    """Figure 10: same accuracy metric, 6 least sensitive apps.

    Positive values mean the heuristic correctly reclaimed more
    utilization than random for these insensitive neighbours.
    """
    table = _accuracy_table(
        campaign,
        list(paperdata.LEAST_SENSITIVE),
        "Figure 10: utilization gained relative to random "
        "(6 least sensitive)",
    )
    table.notes.append("paper: positive for insensitive apps")
    return table


def _pearson(xs: list[float], ys: list[float]) -> float:
    n = min(len(xs), len(ys))
    if n < 2:
        return 0.0
    xs, ys = list(xs[:n]), list(ys[:n])
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx <= 0 or vy <= 0:
        return 0.0
    return cov / (vx * vy) ** 0.5
