"""Terminal reporting: tables, bar charts, CSV/JSON export.

The figure drivers return plain-data results; this module renders them
the way the paper presents them — per-benchmark bars with a mean — using
ASCII so the benches' stdout is the "figure".
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import ExperimentError

BAR_WIDTH = 40


@dataclass
class FigureTable:
    """One rendered artefact: named series over benchmark rows."""

    title: str
    row_names: list[str]
    columns: dict[str, list[float]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_column(self, name: str, values: Sequence[float]) -> None:
        """Attach a data series (must match the row count)."""
        values = list(values)
        if len(values) != len(self.row_names):
            raise ExperimentError(
                f"column {name!r} has {len(values)} values for "
                f"{len(self.row_names)} rows"
            )
        self.columns[name] = values

    def column(self, name: str) -> list[float]:
        """Fetch a series by name."""
        try:
            return self.columns[name]
        except KeyError:
            raise ExperimentError(
                f"no column {name!r} (have: {', '.join(self.columns)})"
            ) from None

    def mean(self, name: str) -> float:
        """Arithmetic mean of one series."""
        values = self.column(name)
        return sum(values) / len(values)

    # -- rendering -------------------------------------------------------

    def render(self, precision: int = 3) -> str:
        """A plain table with a trailing mean row."""
        names = list(self.columns)
        name_width = max(
            [len("benchmark")] + [len(r) for r in self.row_names]
        )
        col_width = max([10] + [len(n) + 2 for n in names])
        out = io.StringIO()
        out.write(f"== {self.title} ==\n")
        header = f"{'benchmark':<{name_width}}"
        for name in names:
            header += f" {name:>{col_width}}"
        out.write(header + "\n")
        for i, row in enumerate(self.row_names):
            line = f"{row:<{name_width}}"
            for name in names:
                line += f" {self.columns[name][i]:>{col_width}.{precision}f}"
            out.write(line + "\n")
        line = f"{'mean':<{name_width}}"
        for name in names:
            line += f" {self.mean(name):>{col_width}.{precision}f}"
        out.write(line + "\n")
        for note in self.notes:
            out.write(f"  note: {note}\n")
        return out.getvalue()

    def render_bars(
        self, column: str, baseline: float = 0.0, precision: int = 3
    ) -> str:
        """A horizontal bar chart of one series (paper-figure style)."""
        values = self.column(column)
        span = max(abs(v - baseline) for v in values) or 1.0
        name_width = max(len(r) for r in self.row_names)
        out = io.StringIO()
        out.write(f"== {self.title} [{column}] ==\n")
        for row, value in zip(self.row_names, values):
            magnitude = abs(value - baseline) / span
            bar = "#" * max(0, round(magnitude * BAR_WIDTH))
            sign = "-" if value < baseline else ""
            out.write(
                f"{row:<{name_width}} {value:>9.{precision}f} {sign}{bar}\n"
            )
        out.write(
            f"{'mean':<{name_width}} "
            f"{self.mean(column):>9.{precision}f}\n"
        )
        return out.getvalue()

    # -- export ----------------------------------------------------------

    def to_csv(self) -> str:
        """CSV with benchmark rows and one column per series."""
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["benchmark", *self.columns])
        for i, row in enumerate(self.row_names):
            writer.writerow(
                [row, *(self.columns[name][i] for name in self.columns)]
            )
        return out.getvalue()

    def to_json(self) -> str:
        """JSON object with title, rows, and series."""
        return json.dumps(
            {
                "title": self.title,
                "rows": self.row_names,
                "columns": self.columns,
                "notes": self.notes,
            },
            indent=2,
        )


def render_series(
    title: str, series: Sequence[float], height: int = 8, width: int = 72
) -> str:
    """An ASCII strip chart of a time series (Figure 3 style).

    Downsamples the series to ``width`` buckets (bucket mean) and prints
    ``height`` rows of vertical resolution.
    """
    values = list(series)
    if not values:
        raise ExperimentError(f"empty series for {title!r}")
    bucket = max(1, len(values) // width)
    points = [
        sum(values[i:i + bucket]) / len(values[i:i + bucket])
        for i in range(0, len(values), bucket)
    ][:width]
    top = max(points) or 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = top * (level - 0.5) / height
        rows.append(
            "".join("#" if p >= threshold else " " for p in points)
        )
    axis = "-" * len(points)
    return (
        f"== {title} (peak {top:.0f}/period) ==\n"
        + "\n".join(rows)
        + "\n"
        + axis
        + "\n"
    )
