"""Parallel fan-out of independent simulation runs.

The campaign's run matrix — (benchmark, configuration) pairs — is
embarrassingly parallel: every run builds its own chip, seeds its own
RNG streams from the campaign settings, and shares no mutable state
with its neighbours.  :func:`fan_out` distributes such runs across a
:class:`~concurrent.futures.ProcessPoolExecutor`; with ``jobs=1`` it
degrades to a plain in-process loop, which is the bit-identical
reference the parallel path is tested against (determinism holds
because each run's results depend only on its picklable arguments,
never on scheduling order).

The worker count comes from, in priority order: an explicit ``jobs``
argument (the CLI's ``--jobs``), the ``REPRO_JOBS`` environment
variable, and finally ``os.cpu_count()``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, TypeVar

from ..errors import ExperimentError
from ..obs import SECONDS_BUCKETS, MetricsRegistry

if TYPE_CHECKING:
    from .campaign import CampaignSettings, RunSummary

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: int | None = None) -> int:
    """Normalise a worker count, consulting ``REPRO_JOBS`` when unset."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env is None:
            return os.cpu_count() or 1
        try:
            jobs = int(env)
        except ValueError:
            raise ExperimentError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            )
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    return jobs


def fan_out(
    worker: Callable[[T], R],
    tasks: Sequence[T],
    jobs: int | None = None,
    describe: Callable[[T], str] = repr,
    metrics: MetricsRegistry | None = None,
) -> list[R]:
    """Run ``worker`` over ``tasks``, results in task order.

    ``worker`` must be a module-level callable and every task picklable
    (:mod:`concurrent.futures` requirements).  A failing task does not
    abort its siblings: every task runs to completion or failure, then
    one :class:`ExperimentError` reports *which* tasks failed, via
    ``describe``.

    ``metrics``, when given, receives per-job spans: the
    ``executor.job_seconds`` histogram (submit-to-result for parallel
    jobs, so queueing time is included), plus ``executor.tasks`` /
    ``executor.failures`` counters and the batch's total wall time.
    """
    jobs = resolve_jobs(jobs)
    batch_started = time.perf_counter()
    if metrics is not None:
        metrics.counter("executor.tasks").inc(len(tasks))
        span = metrics.histogram(
            "executor.job_seconds", buckets=SECONDS_BUCKETS
        )
    if jobs == 1 or len(tasks) <= 1:
        results: list[R] = []
        for task in tasks:
            started = time.perf_counter()
            try:
                results.append(worker(task))
            except ExperimentError:
                if metrics is not None:
                    metrics.counter("executor.failures").inc()
                raise
            except Exception as exc:
                if metrics is not None:
                    metrics.counter("executor.failures").inc()
                raise ExperimentError(
                    f"run {describe(task)} failed: {exc!r}"
                ) from exc
            finally:
                if metrics is not None:
                    span.observe(time.perf_counter() - started)
                    metrics.gauge("executor.batch_seconds").set(
                        time.perf_counter() - batch_started
                    )
        return results
    out: list[R | None] = [None] * len(tasks)
    failures: list[str] = []
    done_at: dict[int, float] = {}
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        submitted_at = time.perf_counter()
        futures = []
        for index, task in enumerate(tasks):
            future = pool.submit(worker, task)
            # Stamp completion on the callback thread: the span then
            # covers queue wait + execution, not result-drain order.
            future.add_done_callback(
                lambda _f, i=index: done_at.__setitem__(
                    i, time.perf_counter()
                )
            )
            futures.append(future)
        for index, future in enumerate(futures):
            try:
                out[index] = future.result()
            except Exception as exc:
                failures.append(f"{describe(tasks[index])}: {exc!r}")
    if metrics is not None:
        for index in range(len(tasks)):
            span.observe(done_at.get(index, submitted_at) - submitted_at)
        metrics.counter("executor.failures").inc(len(failures))
        metrics.gauge("executor.batch_seconds").set(
            time.perf_counter() - batch_started
        )
    if failures:
        raise ExperimentError(
            f"{len(failures)} of {len(tasks)} runs failed — "
            + "; ".join(failures)
        )
    return out  # type: ignore[return-value]


def _describe_run(task: tuple) -> str:
    _, bench, config = task
    return f"({bench}, {config})"


def _run_summary(task: tuple) -> "RunSummary":
    # Imported lazily: campaign.py imports this module at load time.
    from .campaign import produce_summary

    settings, bench, config = task
    return produce_summary(settings, bench, config)


def run_many(
    settings: "CampaignSettings",
    pairs: Iterable[tuple[str, str]],
    jobs: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> list["RunSummary"]:
    """Simulate every (bench, config) pair, fanned across processes.

    ``config`` is ``"solo"`` or one of the co-location configurations;
    summaries come back in ``pairs`` order.
    """
    tasks = [(settings, bench, config) for bench, config in pairs]
    return fan_out(
        _run_summary, tasks, jobs=jobs, describe=_describe_run,
        metrics=metrics,
    )
