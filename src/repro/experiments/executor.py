"""Parallel fan-out of independent simulation runs.

The campaign's run matrix is embarrassingly parallel: every run is a
self-contained :class:`~repro.runspec.RunSpec` — it builds its own
chip, seeds its own RNG streams, and shares no mutable state with its
neighbours.  :func:`fan_out` distributes such runs across a
:class:`~concurrent.futures.ProcessPoolExecutor`; with ``jobs=1`` it
degrades to a plain in-process loop, which is the bit-identical
reference the parallel path is tested against (determinism holds
because each run's results depend only on its picklable arguments,
never on scheduling order).

:func:`run_specs` is the one spec-in/outcome-out fan-out every
experiment driver uses; :func:`run_many` keeps the campaign's
(benchmark, config-tag) vocabulary on top of it.

The worker count comes from, in priority order: an explicit ``jobs``
argument (the CLI's ``--jobs``), the ``REPRO_JOBS`` environment
variable, and finally the number of CPUs this process may actually be
scheduled on (``os.sched_getaffinity``, so container/cgroup CPU masks
are honoured), falling back to ``os.cpu_count()`` where affinity is
unsupported.

Spec fan-outs (:func:`run_specs`) route through the persistent warm
pool of :mod:`repro.experiments.workerpool` by default; set
``REPRO_WARM_POOL=0`` for the cold per-batch
:class:`~concurrent.futures.ProcessPoolExecutor` behaviour.
:func:`fan_out` itself stays cold — it accepts arbitrary callables,
which the spec-keyed warm protocol cannot intern.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, TypeVar

from ..errors import ConfigError, ExperimentError, ReproError
from ..obs import (
    SECONDS_BUCKETS,
    SPAN_SECONDS_BUCKETS,
    JSONLSink,
    MetricsRegistry,
    Tracer,
)
from ..runspec import RunOutcome, RunSpec, execute_run

if TYPE_CHECKING:
    from .campaign import CampaignSettings, RunSummary

T = TypeVar("T")
R = TypeVar("R")

#: When set, every executed spec writes its decision trace as
#: ``trace_<victim>__<config>.jsonl`` under this directory (the CLI's
#: ``--trace`` flag sets it; worker processes inherit it via fork).
TRACE_DIR_ENV = "REPRO_TRACE_DIR"


def resolve_jobs(jobs: int | None = None, source: str = "jobs") -> int:
    """Normalise a worker count, consulting ``REPRO_JOBS`` when unset.

    Rejects non-integer and non-positive counts with a
    :class:`ConfigError` that names where the bad value came from —
    ``source`` (the CLI passes ``"--jobs"``) for an explicit argument,
    ``REPRO_JOBS`` for the environment variable.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env is None:
            try:
                # The schedulable-CPU count: inside a container or
                # taskset mask this is the real parallelism available,
                # which os.cpu_count() (all system CPUs) overstates.
                return len(os.sched_getaffinity(0))
            except (AttributeError, OSError):
                return os.cpu_count() or 1
        source = "REPRO_JOBS"
        try:
            jobs = int(env)
        except ValueError:
            raise ConfigError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ConfigError(
            f"{source} must be an integer, got {jobs!r}"
        )
    if jobs < 1:
        raise ConfigError(f"{source} must be >= 1, got {jobs}")
    return jobs


def fan_out(
    worker: Callable[[T], R],
    tasks: Sequence[T],
    jobs: int | None = None,
    describe: Callable[[T], str] = repr,
    metrics: MetricsRegistry | None = None,
) -> list[R]:
    """Run ``worker`` over ``tasks``, results in task order.

    ``worker`` must be a module-level callable and every task picklable
    (:mod:`concurrent.futures` requirements).  A failing task does not
    abort its siblings: every task runs to completion or failure, then
    one :class:`ExperimentError` reports *which* tasks failed, via
    ``describe``.

    ``metrics``, when given, receives per-job spans: the
    ``executor.job_seconds`` histogram (submit-to-result for parallel
    jobs, so queueing time is included), plus ``executor.tasks`` /
    ``executor.failures`` counters and the batch's total wall time.
    """
    jobs = resolve_jobs(jobs)
    batch_started = time.perf_counter()
    if metrics is not None:
        metrics.counter("executor.tasks").inc(len(tasks))
        span = metrics.histogram(
            "executor.job_seconds", buckets=SECONDS_BUCKETS
        )
    if jobs == 1 or len(tasks) <= 1:
        results: list[R] = []
        for task in tasks:
            started = time.perf_counter()
            try:
                results.append(worker(task))
            except ExperimentError:
                if metrics is not None:
                    metrics.counter("executor.failures").inc()
                raise
            except Exception as exc:
                if metrics is not None:
                    metrics.counter("executor.failures").inc()
                raise ExperimentError(
                    f"run {describe(task)} failed: {exc!r}"
                ) from exc
            finally:
                if metrics is not None:
                    span.observe(time.perf_counter() - started)
                    metrics.gauge("executor.batch_seconds").set(
                        time.perf_counter() - batch_started
                    )
        return results
    out: list[R | None] = [None] * len(tasks)
    failures: list[str] = []
    done_at: dict[int, float] = {}
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(tasks)))
    try:
        submitted_at = time.perf_counter()
        futures = []
        for index, task in enumerate(tasks):
            future = pool.submit(worker, task)
            # Stamp completion on the callback thread: the span then
            # covers queue wait + execution, not result-drain order.
            future.add_done_callback(
                lambda _f, i=index: done_at.__setitem__(
                    i, time.perf_counter()
                )
            )
            futures.append(future)
        for index, future in enumerate(futures):
            try:
                out[index] = future.result()
            except Exception as exc:
                failures.append(f"{describe(tasks[index])}: {exc!r}")
    except BaseException:
        # Ctrl-C (or any non-run failure) mid-collection: cancel every
        # task that has not started and leave without waiting, so a
        # dying batch cannot leak orphan workers that keep simulating.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    if metrics is not None:
        for index in range(len(tasks)):
            span.observe(done_at.get(index, submitted_at) - submitted_at)
        metrics.counter("executor.failures").inc(len(failures))
        metrics.gauge("executor.batch_seconds").set(
            time.perf_counter() - batch_started
        )
    if failures:
        raise ExperimentError(
            f"{len(failures)} of {len(tasks)} runs failed — "
            + "; ".join(failures)
        )
    return out  # type: ignore[return-value]


def _spec_tracer(spec: RunSpec) -> Tracer | None:
    """Build the per-run JSONL tracer when ``REPRO_TRACE_DIR`` is set."""
    trace_dir = os.environ.get(TRACE_DIR_ENV)
    if not trace_dir:
        return None
    safe = spec.victim.replace(".", "_")
    path = Path(trace_dir) / f"trace_{safe}__{spec.config_tag}.jsonl"
    return Tracer([JSONLSink(path)])


def _execute_spec(spec: RunSpec) -> RunOutcome:
    """The executor's unit of work: one spec, on its named backend.

    Module-level and driven only by its picklable argument, as the
    process pool requires.  Attaches the environment-configured tracer
    (if any) so traced campaigns behave identically serial or parallel.
    """
    tracer = _spec_tracer(spec)
    try:
        return execute_run(spec, tracer=tracer)
    finally:
        if tracer is not None:
            tracer.close()


def run_specs(
    specs: Iterable[RunSpec],
    jobs: int | None = None,
    metrics: MetricsRegistry | None = None,
    describe: Callable[[RunSpec], str] | None = None,
) -> list[RunOutcome]:
    """Execute every spec on its named backend, fanned across processes.

    Outcomes come back in ``specs`` order.  Failures are reported with
    ``describe`` (defaulting to :meth:`RunSpec.describe`, e.g.
    ``(429.mcf, rule)``) and never abort sibling runs.

    Parallel batches run on the persistent warm pool
    (:mod:`repro.experiments.workerpool`) unless ``REPRO_WARM_POOL=0``;
    serial execution (``jobs=1``) stays in-process, the bit-identical
    reference both parallel paths are tested against.
    """
    from .workerpool import warm_pool_enabled

    specs = list(specs)
    jobs = resolve_jobs(jobs)
    describe = describe or RunSpec.describe
    if jobs > 1 and len(specs) > 1 and warm_pool_enabled():
        return _run_specs_warm(specs, jobs, metrics, describe)
    return fan_out(
        _execute_spec,
        specs,
        jobs=jobs,
        describe=describe,
        metrics=metrics,
    )


def _run_specs_warm(
    specs: list[RunSpec],
    jobs: int,
    metrics: MetricsRegistry | None,
    describe: Callable[[RunSpec], str],
) -> list[RunOutcome]:
    """:func:`run_specs` on the persistent pool — same contract.

    Matches the cold parallel path observable-for-observable: results
    in spec order, one aggregated :class:`ExperimentError` naming every
    failed run, and the same metrics instruments (``executor.tasks``,
    ``executor.failures``, ``executor.job_seconds``,
    ``executor.batch_seconds``) plus the warm-only
    ``executor.worker_reuse`` gauge — how many dispatches in this
    batch were served from a worker's interned spec state.
    """
    from .workerpool import WorkerFailure, get_pool

    pool = get_pool(jobs)
    batch_started = time.perf_counter()
    span = None
    if metrics is not None:
        metrics.counter("executor.tasks").inc(len(specs))
        span = metrics.histogram(
            "executor.job_seconds", buckets=SECONDS_BUCKETS
        )

    def on_result(key: object, value: object, seconds: float) -> None:
        if span is not None:
            span.observe(seconds)
        if metrics is not None:
            # Dispatch-to-result wall clock of one warm-pool task: the
            # worker-side leg of the span-profiling story (the engine
            # and kernel legs travel back on run telemetry).
            metrics.histogram(
                "profile.worker_dispatch_seconds",
                buckets=SPAN_SECONDS_BUCKETS,
            ).observe(seconds)

    results = pool.map_specs(
        [(index, spec, None) for index, spec in enumerate(specs)],
        on_result=on_result,
    )
    failures: list[str] = []
    out: list[RunOutcome] = []
    for index, spec in enumerate(specs):
        value = results[index]
        if isinstance(value, WorkerFailure):
            failures.append(f"{describe(spec)}: {value.describe()}")
        else:
            out.append(value)
    if metrics is not None:
        metrics.counter("executor.failures").inc(len(failures))
        metrics.gauge("executor.batch_seconds").set(
            time.perf_counter() - batch_started
        )
        metrics.gauge("executor.worker_reuse").set(pool.last_batch_reuse)
    if failures:
        raise ExperimentError(
            f"{len(failures)} of {len(specs)} runs failed — "
            + "; ".join(failures)
        )
    return out


def run_many(
    settings: "CampaignSettings",
    pairs: Iterable[tuple[str, str]],
    jobs: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> list["RunSummary"]:
    """Simulate every (bench, config) pair, fanned across processes.

    ``config`` is ``"solo"`` or one of the co-location configurations;
    summaries come back in ``pairs`` order.  Each pair is translated to
    a :class:`RunSpec` up front (an unknown config therefore fails fast,
    with the pair's identity in the message) and labelled by its digest,
    so failure reports use the caller's vocabulary even though the
    workers only ever see specs.
    """
    from .campaign import RunSummary

    pairs = list(pairs)
    specs: list[RunSpec] = []
    labels: dict[str, str] = {}
    for bench, config in pairs:
        try:
            spec = settings.run_spec(bench, config)
        except ReproError as exc:
            raise ExperimentError(
                f"run ({bench}, {config}) failed: {exc}"
            ) from exc
        labels[spec.digest] = f"({bench}, {config})"
        specs.append(spec)
    outcomes = run_specs(
        specs,
        jobs=jobs,
        metrics=metrics,
        describe=lambda spec: labels.get(spec.digest, spec.describe()),
    )
    return [
        RunSummary.from_outcome(bench, config, outcome)
        for (bench, config), outcome in zip(pairs, outcomes)
    ]
