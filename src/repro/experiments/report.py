"""One-shot markdown report generation.

``repro-caer report`` renders every figure, the headline numbers, and
the paper-vs-measured comparison into a single self-contained markdown
document — the generated counterpart of the hand-written
EXPERIMENTS.md, with whatever run length and seed the campaign used.

The report degrades instead of dying: a section whose runs are
quarantined (or otherwise unrenderable) is replaced by an inline note,
and every quarantined run is listed in its own section — a partially
failing campaign still yields a report covering everything that worked.
"""

from __future__ import annotations

import io
import time
from pathlib import Path

from ..errors import ReproError
from ..obs import PROFILE_PREFIX, histogram_quantile, merge_snapshots
from . import paperdata
from .campaign import CACHE_EPOCH, Campaign
from .figures import (
    figure1,
    figure2,
    figure3,
    figure3_correlations,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
)
from .headline import headline_numbers
from .fleetchaos import chaos_frontier
from .shootout import detector_shootout


def _code_block(text: str) -> str:
    return f"```\n{text.rstrip()}\n```\n"


def _render_section(render) -> str:
    """Render one section's body, degrading a failure to a note.

    Any :class:`ReproError` — typically an
    :class:`~repro.errors.ExperimentError` from a quarantined run —
    becomes an italic "unavailable" note instead of aborting the whole
    report.
    """
    try:
        return render()
    except ReproError as exc:
        return f"_unavailable: {exc}_\n"


def generate_report(campaign: Campaign) -> str:
    """Render the full evaluation as a markdown document."""
    settings = campaign.settings
    started = time.perf_counter()
    out = io.StringIO()
    out.write("# CAER reproduction report\n\n")
    out.write(
        f"Machine: scaled Nehalem (cache scale "
        f"{settings.cache_scale}, period {settings.period_cycles} "
        f"cycles); run length {settings.length}; seed "
        f"{settings.seed}.\n\n"
    )
    out.write(f"Paper machine: {paperdata.PAPER_MACHINE}.\n\n")

    out.write("## Headline numbers\n\n")
    out.write(
        _render_section(
            lambda: _code_block(headline_numbers(campaign).render())
        )
    )
    out.write("\n")

    sections = [
        ("Figure 1 — slowdown next to lbm", figure1),
        ("Figure 2 — LLC misses alone vs. with contender", figure2),
        ("Figure 6 — penalty under each configuration", figure6),
        ("Figure 7 — utilization gained", figure7),
        ("Figure 8 — interference eliminated", figure8),
        ("Figure 9 — accuracy vs. random (most sensitive)", figure9),
        ("Figure 10 — accuracy vs. random (least sensitive)", figure10),
    ]
    for title, driver in sections:
        out.write(f"## {title}\n\n")
        out.write(
            _render_section(
                lambda driver=driver: _code_block(
                    driver(campaign).render()
                )
            )
        )
        out.write("\n")

    out.write("## Figure 3 — time series\n\n")
    out.write(_render_section(lambda: _figure3_section(campaign)))

    out.write("## Detector shootout\n\n")
    out.write(
        _render_section(
            lambda: _code_block(
                detector_shootout(settings=settings).render()
            )
        )
    )
    out.write("\n")

    out.write("## Chaos frontier — fleet layer\n\n")
    out.write(_render_section(lambda: _fleet_section(campaign)))
    out.write("\n")

    elapsed = time.perf_counter() - started
    out.write("## Campaign timing\n\n")
    out.write(_timing_section(campaign, elapsed))
    out.write(_telemetry_section(campaign))
    out.write(_profiling_section(campaign))
    out.write(_quarantine_section(campaign))
    return out.getvalue()


def _fleet_section(campaign: Campaign) -> str:
    """Chaos frontier of the fleet layer, sized for a report run.

    A single fault seed per intensity keeps the section cheap; the
    standalone ``repro-caer fleet`` sweep averages over repeats.
    """
    table = chaos_frontier(campaign, repeats=1)
    out = io.StringIO()
    out.write(
        "Simulated fleet of nodes running the campaign's calibrated "
        "solo/colocated profiles under seed-driven node faults "
        "(crash, telemetry blackout, straggler). Placement is "
        "journal-backed, so jobs are never lost; the frontier shows "
        "LS SLO attainment and batch throughput degrading with fault "
        "intensity.\n\n"
    )
    out.write(_code_block(table.render()))
    return out.getvalue()


def _figure3_section(campaign: Campaign) -> str:
    out = io.StringIO()
    for chart in figure3(campaign).values():
        out.write(_code_block(chart))
        out.write("\n")
    out.write(_code_block(figure3_correlations(campaign).render()))
    return out.getvalue()


def _quarantine_section(campaign: Campaign) -> str:
    """List every run the campaign gave up on, with its last error."""
    records = campaign.quarantine_report()
    if not records:
        return ""
    out = io.StringIO()
    out.write("\n## Quarantine\n\n")
    out.write(
        f"{len(records)} run(s) failed every retry and were "
        f"quarantined; sections depending on them are marked "
        f"unavailable. Clear with `Campaign.clear_quarantine()` or "
        f"rerun with `REPRO_RETRY_QUARANTINED=1`.\n\n"
    )
    for record in records:
        out.write(
            f"- {record.label} — {record.attempts} attempts; last "
            f"error: {record.error}\n"
        )
    return out.getvalue()


def _timing_section(campaign: Campaign, elapsed: float) -> str:
    """Render wall-time totals, honest about untimed cache entries.

    Cached summaries written before run timing existed deserialise
    with ``wall_seconds == 0.0``; summing those silently reports an
    impossible 0.0 s, so untimed entries are called out as "n/a".
    """
    timed, total = campaign.timing_coverage()
    epoch_note = (
        f"Untimed entries were cached by an older build (cache epoch "
        f"{CACHE_EPOCH} is unchanged by timing); re-run with "
        f"`--no-cache` or a fresh `REPRO_CACHE_DIR` to re-measure.\n"
    )
    if total and timed == 0:
        return (
            f"Simulated-run wall time: n/a — none of the {total} "
            f"cached runs carry timing. {epoch_note}"
            f"Report generation took {elapsed:.1f} s.\n"
        )
    sim_seconds = campaign.total_wall_seconds()
    text = (
        f"Simulated-run wall time: {sim_seconds:.1f} s across "
        f"{timed} timed runs (cached runs count 0); "
        f"report generation took {elapsed:.1f} s.\n"
    )
    if timed < total:
        text += (
            f"{total - timed} of {total} runs have no timing (n/a). "
            + epoch_note
        )
    return text


def _telemetry_section(campaign: Campaign) -> str:
    """Summarise the runs' telemetry snapshots, when any carry one."""
    snapshots = campaign.telemetry_snapshots()
    if not snapshots:
        return ""
    derived = [s.get("derived", {}) for s in snapshots]
    caer = [d for d in derived if d.get("verdicts", 0)]
    out = io.StringIO()
    out.write("\n## Telemetry\n\n")
    out.write(
        f"{len(snapshots)} of {campaign.memoised_runs()} memoised "
        f"runs carry telemetry"
    )
    if caer:
        trigger = sum(d["detector_trigger_rate"] for d in caer) / len(caer)
        run_frac = sum(d["batch_run_fraction"] for d in caer) / len(caer)
        out.write(
            f"; across the {len(caer)} CAER-governed runs the mean "
            f"detector trigger rate is {trigger:.0%} and the batch ran "
            f"{run_frac:.0%} of governed periods"
        )
    out.write(".\n")
    cache = campaign.metrics.snapshot()
    hits = sum(
        cache.get(name, {}).get("value", 0.0)
        for name in (
            "campaign.cache_memory_hits", "campaign.cache_disk_hits",
        )
    )
    misses = cache.get("campaign.cache_misses", {}).get("value", 0.0)
    if hits or misses:
        out.write(
            f"Campaign cache: {hits:.0f} hits, {misses:.0f} misses "
            f"this invocation.\n"
        )
    return out.getvalue()


def _profiling_section(campaign: Campaign) -> str:
    """Wall-clock span profile merged across every run's telemetry.

    Spans are metrics, not trace events, so they carry real seconds;
    the section renders the merged histograms (engine periods, vector
    classify/commit, worker dispatch) with bucket-resolution quantiles.
    Absent when profiling was off (``REPRO_PROFILE_SPANS=0``) or no
    cached run carries telemetry.
    """
    merged = merge_snapshots(
        s.get("metrics", {}) for s in campaign.telemetry_snapshots()
    )
    merged = merge_snapshots([merged, campaign.metrics.snapshot()])
    spans = {
        name: data
        for name, data in sorted(merged.items())
        if name.startswith(PROFILE_PREFIX)
        and data.get("type") == "histogram"
        and data.get("count", 0)
    }
    if not spans:
        return ""
    table = io.StringIO()
    table.write(
        f"{'span':<36} {'count':>8} {'mean':>10} {'p50':>10} "
        f"{'p95':>10} {'max':>10}\n"
    )
    for name, data in spans.items():
        count = data["count"]
        mean = data["sum"] / count
        p50 = histogram_quantile(data, 0.50)
        p95 = histogram_quantile(data, 0.95)
        peak = data.get("max") or 0.0
        table.write(
            f"{name:<36} {count:>8} {_seconds(mean):>10} "
            f"{_seconds(p50):>10} {_seconds(p95):>10} "
            f"{_seconds(peak):>10}\n"
        )
    return (
        "\n## Span profile\n\n"
        "Wall-clock histograms from the profiling layer (metrics-only "
        "— traces stay clock-free). Quantiles are bucket upper "
        "bounds.\n\n" + _code_block(table.getvalue())
    )


def _seconds(value: float | None) -> str:
    """Human-scale seconds: µs/ms/s as magnitude warrants."""
    if value is None:
        return "n/a"
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.2f}s"


def write_report(
    campaign: Campaign, path: str | Path = "results/report.md"
) -> Path:
    """Generate the report and write it to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(generate_report(campaign))
    return path
