"""One-shot markdown report generation.

``repro-caer report`` renders every figure, the headline numbers, and
the paper-vs-measured comparison into a single self-contained markdown
document — the generated counterpart of the hand-written
EXPERIMENTS.md, with whatever run length and seed the campaign used.
"""

from __future__ import annotations

import io
import time
from pathlib import Path

from . import paperdata
from .campaign import Campaign
from .figures import (
    figure1,
    figure2,
    figure3,
    figure3_correlations,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
)
from .headline import headline_numbers


def _code_block(text: str) -> str:
    return f"```\n{text.rstrip()}\n```\n"


def generate_report(campaign: Campaign) -> str:
    """Render the full evaluation as a markdown document."""
    settings = campaign.settings
    started = time.perf_counter()
    out = io.StringIO()
    out.write("# CAER reproduction report\n\n")
    out.write(
        f"Machine: scaled Nehalem (cache scale "
        f"{settings.cache_scale}, period {settings.period_cycles} "
        f"cycles); run length {settings.length}; seed "
        f"{settings.seed}.\n\n"
    )
    out.write(f"Paper machine: {paperdata.PAPER_MACHINE}.\n\n")

    out.write("## Headline numbers\n\n")
    out.write(_code_block(headline_numbers(campaign).render()))
    out.write("\n")

    sections = [
        ("Figure 1 — slowdown next to lbm", figure1),
        ("Figure 2 — LLC misses alone vs. with contender", figure2),
        ("Figure 6 — penalty under each configuration", figure6),
        ("Figure 7 — utilization gained", figure7),
        ("Figure 8 — interference eliminated", figure8),
        ("Figure 9 — accuracy vs. random (most sensitive)", figure9),
        ("Figure 10 — accuracy vs. random (least sensitive)", figure10),
    ]
    for title, driver in sections:
        out.write(f"## {title}\n\n")
        out.write(_code_block(driver(campaign).render()))
        out.write("\n")

    out.write("## Figure 3 — time series\n\n")
    for chart in figure3(campaign).values():
        out.write(_code_block(chart))
        out.write("\n")
    out.write(_code_block(figure3_correlations(campaign).render()))

    elapsed = time.perf_counter() - started
    sim_seconds = campaign.total_wall_seconds()
    out.write("## Campaign timing\n\n")
    out.write(
        f"Simulated-run wall time: {sim_seconds:.1f} s across "
        f"{campaign.memoised_runs()} runs (cached runs count 0); "
        f"report generation took {elapsed:.1f} s.\n"
    )
    return out.getvalue()


def write_report(
    campaign: Campaign, path: str | Path = "results/report.md"
) -> Path:
    """Generate the report and write it to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(generate_report(campaign))
    return path
