"""One-shot markdown report generation.

``repro-caer report`` renders every figure, the headline numbers, and
the paper-vs-measured comparison into a single self-contained markdown
document — the generated counterpart of the hand-written
EXPERIMENTS.md, with whatever run length and seed the campaign used.

The report degrades instead of dying: a section whose runs are
quarantined (or otherwise unrenderable) is replaced by an inline note,
and every quarantined run is listed in its own section — a partially
failing campaign still yields a report covering everything that worked.
"""

from __future__ import annotations

import io
import time
from pathlib import Path

from ..errors import ReproError
from . import paperdata
from .campaign import CACHE_EPOCH, Campaign
from .figures import (
    figure1,
    figure2,
    figure3,
    figure3_correlations,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
)
from .headline import headline_numbers


def _code_block(text: str) -> str:
    return f"```\n{text.rstrip()}\n```\n"


def _render_section(render) -> str:
    """Render one section's body, degrading a failure to a note.

    Any :class:`ReproError` — typically an
    :class:`~repro.errors.ExperimentError` from a quarantined run —
    becomes an italic "unavailable" note instead of aborting the whole
    report.
    """
    try:
        return render()
    except ReproError as exc:
        return f"_unavailable: {exc}_\n"


def generate_report(campaign: Campaign) -> str:
    """Render the full evaluation as a markdown document."""
    settings = campaign.settings
    started = time.perf_counter()
    out = io.StringIO()
    out.write("# CAER reproduction report\n\n")
    out.write(
        f"Machine: scaled Nehalem (cache scale "
        f"{settings.cache_scale}, period {settings.period_cycles} "
        f"cycles); run length {settings.length}; seed "
        f"{settings.seed}.\n\n"
    )
    out.write(f"Paper machine: {paperdata.PAPER_MACHINE}.\n\n")

    out.write("## Headline numbers\n\n")
    out.write(
        _render_section(
            lambda: _code_block(headline_numbers(campaign).render())
        )
    )
    out.write("\n")

    sections = [
        ("Figure 1 — slowdown next to lbm", figure1),
        ("Figure 2 — LLC misses alone vs. with contender", figure2),
        ("Figure 6 — penalty under each configuration", figure6),
        ("Figure 7 — utilization gained", figure7),
        ("Figure 8 — interference eliminated", figure8),
        ("Figure 9 — accuracy vs. random (most sensitive)", figure9),
        ("Figure 10 — accuracy vs. random (least sensitive)", figure10),
    ]
    for title, driver in sections:
        out.write(f"## {title}\n\n")
        out.write(
            _render_section(
                lambda driver=driver: _code_block(
                    driver(campaign).render()
                )
            )
        )
        out.write("\n")

    out.write("## Figure 3 — time series\n\n")
    out.write(_render_section(lambda: _figure3_section(campaign)))

    elapsed = time.perf_counter() - started
    out.write("## Campaign timing\n\n")
    out.write(_timing_section(campaign, elapsed))
    out.write(_telemetry_section(campaign))
    out.write(_quarantine_section(campaign))
    return out.getvalue()


def _figure3_section(campaign: Campaign) -> str:
    out = io.StringIO()
    for chart in figure3(campaign).values():
        out.write(_code_block(chart))
        out.write("\n")
    out.write(_code_block(figure3_correlations(campaign).render()))
    return out.getvalue()


def _quarantine_section(campaign: Campaign) -> str:
    """List every run the campaign gave up on, with its last error."""
    records = campaign.quarantine_report()
    if not records:
        return ""
    out = io.StringIO()
    out.write("\n## Quarantine\n\n")
    out.write(
        f"{len(records)} run(s) failed every retry and were "
        f"quarantined; sections depending on them are marked "
        f"unavailable. Clear with `Campaign.clear_quarantine()` or "
        f"rerun with `REPRO_RETRY_QUARANTINED=1`.\n\n"
    )
    for record in records:
        out.write(
            f"- {record.label} — {record.attempts} attempts; last "
            f"error: {record.error}\n"
        )
    return out.getvalue()


def _timing_section(campaign: Campaign, elapsed: float) -> str:
    """Render wall-time totals, honest about untimed cache entries.

    Cached summaries written before run timing existed deserialise
    with ``wall_seconds == 0.0``; summing those silently reports an
    impossible 0.0 s, so untimed entries are called out as "n/a".
    """
    timed, total = campaign.timing_coverage()
    epoch_note = (
        f"Untimed entries were cached by an older build (cache epoch "
        f"{CACHE_EPOCH} is unchanged by timing); re-run with "
        f"`--no-cache` or a fresh `REPRO_CACHE_DIR` to re-measure.\n"
    )
    if total and timed == 0:
        return (
            f"Simulated-run wall time: n/a — none of the {total} "
            f"cached runs carry timing. {epoch_note}"
            f"Report generation took {elapsed:.1f} s.\n"
        )
    sim_seconds = campaign.total_wall_seconds()
    text = (
        f"Simulated-run wall time: {sim_seconds:.1f} s across "
        f"{timed} timed runs (cached runs count 0); "
        f"report generation took {elapsed:.1f} s.\n"
    )
    if timed < total:
        text += (
            f"{total - timed} of {total} runs have no timing (n/a). "
            + epoch_note
        )
    return text


def _telemetry_section(campaign: Campaign) -> str:
    """Summarise the runs' telemetry snapshots, when any carry one."""
    snapshots = campaign.telemetry_snapshots()
    if not snapshots:
        return ""
    derived = [s.get("derived", {}) for s in snapshots]
    caer = [d for d in derived if d.get("verdicts", 0)]
    out = io.StringIO()
    out.write("\n## Telemetry\n\n")
    out.write(
        f"{len(snapshots)} of {campaign.memoised_runs()} memoised "
        f"runs carry telemetry"
    )
    if caer:
        trigger = sum(d["detector_trigger_rate"] for d in caer) / len(caer)
        run_frac = sum(d["batch_run_fraction"] for d in caer) / len(caer)
        out.write(
            f"; across the {len(caer)} CAER-governed runs the mean "
            f"detector trigger rate is {trigger:.0%} and the batch ran "
            f"{run_frac:.0%} of governed periods"
        )
    out.write(".\n")
    cache = campaign.metrics.snapshot()
    hits = sum(
        cache.get(name, {}).get("value", 0.0)
        for name in (
            "campaign.cache_memory_hits", "campaign.cache_disk_hits",
        )
    )
    misses = cache.get("campaign.cache_misses", {}).get("value", 0.0)
    if hits or misses:
        out.write(
            f"Campaign cache: {hits:.0f} hits, {misses:.0f} misses "
            f"this invocation.\n"
        )
    return out.getvalue()


def write_report(
    campaign: Campaign, path: str | Path = "results/report.md"
) -> Path:
    """Generate the report and write it to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(generate_report(campaign))
    return path
