"""Repeatability: the reproduction's own error bars.

The paper reports single runs; a simulator can do better.  This
experiment re-runs the reference victims under fresh seeds (different
pattern RNG streams and interleavings) and reports the spread of the
headline quantities — the reproduction's claims are only as strong as
their stability across seeds.
"""

from __future__ import annotations

import statistics

from ..caer.runtime import CaerConfig
from ..runspec import BATCH_BENCHMARK, ContenderSpec, RunSpec
from .campaign import CampaignSettings
from .executor import run_specs
from .reporting import FigureTable

#: Victims re-measured per seed.
VICTIMS = ("429.mcf", "444.namd")


def repeatability_study(
    settings: CampaignSettings | None = None,
    seeds: tuple[int, ...] = (0, 1, 2),
    victims: tuple[str, ...] = VICTIMS,
    jobs: int | None = None,
) -> FigureTable:
    """Mean and spread of raw/CAER penalty and utilization over seeds.

    Each (victim, seed) cell is three declarative specs — solo, raw,
    and rule-based CAER, differing only in their ``seed`` field — and
    the whole grid fans across workers in a single batch.
    """
    settings = settings or CampaignSettings.from_env()
    machine = settings.machine()
    caer = CaerConfig.rule_based()

    def spec(victim: str, seed: int, config: CaerConfig | None,
             solo: bool) -> RunSpec:
        return RunSpec(
            victim=victim,
            contenders=(
                () if solo else (ContenderSpec(BATCH_BENCHMARK),)
            ),
            machine=machine,
            caer=config,
            seed=seed,
            length=settings.length,
            slices_per_period=settings.slices_per_period,
            backend=settings.backend,
        )

    cells = [(victim, seed) for victim in victims for seed in seeds]
    specs: list[RunSpec] = []
    for victim, seed in cells:
        specs.append(spec(victim, seed, None, solo=True))
        specs.append(spec(victim, seed, None, solo=False))
        specs.append(spec(victim, seed, caer, solo=False))
    outcomes = run_specs(specs, jobs=jobs)
    by_cell = {
        cell: outcomes[3 * i: 3 * i + 3]
        for i, cell in enumerate(cells)
    }

    rows: list[str] = []
    columns: dict[str, list[float]] = {
        "raw_mean": [], "raw_spread": [],
        "caer_mean": [], "caer_spread": [],
        "util_mean": [], "util_spread": [],
    }
    for victim in victims:
        raw_penalties: list[float] = []
        caer_penalties: list[float] = []
        utils: list[float] = []
        for seed in seeds:
            solo, raw, managed = by_cell[(victim, seed)]
            base = solo.completion_periods
            raw_penalties.append(raw.completion_periods / base - 1.0)
            caer_penalties.append(
                managed.completion_periods / base - 1.0
            )
            utils.append(managed.utilization_gained)
        rows.append(victim)
        for key, values in (
            ("raw", raw_penalties),
            ("caer", caer_penalties),
            ("util", utils),
        ):
            columns[f"{key}_mean"].append(statistics.mean(values))
            columns[f"{key}_spread"].append(
                max(values) - min(values)
            )

    table = FigureTable(
        title=f"Repeatability over seeds {seeds}",
        row_names=rows,
    )
    for name, values in columns.items():
        table.add_column(name, values)
    table.notes.append(
        "spread = max - min over seeds; the qualitative story must "
        "not depend on the RNG stream"
    )
    return table
