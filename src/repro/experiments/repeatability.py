"""Repeatability: the reproduction's own error bars.

The paper reports single runs; a simulator can do better.  This
experiment re-runs the reference victims under fresh seeds (different
pattern RNG streams and interleavings) and reports the spread of the
headline quantities — the reproduction's claims are only as strong as
their stability across seeds.
"""

from __future__ import annotations

import statistics

from ..caer.metrics import utilization_gained
from ..caer.runtime import CaerConfig, caer_factory
from ..sim import run_colocated, run_solo
from ..workloads import benchmark
from .campaign import BATCH_BENCHMARK, CampaignSettings
from .reporting import FigureTable

#: Victims re-measured per seed.
VICTIMS = ("429.mcf", "444.namd")


def repeatability_study(
    settings: CampaignSettings | None = None,
    seeds: tuple[int, ...] = (0, 1, 2),
    victims: tuple[str, ...] = VICTIMS,
) -> FigureTable:
    """Mean and spread of raw/CAER penalty and utilization over seeds."""
    settings = settings or CampaignSettings.from_env()
    machine = settings.machine()
    l3 = machine.l3.capacity_lines

    rows: list[str] = []
    columns: dict[str, list[float]] = {
        "raw_mean": [], "raw_spread": [],
        "caer_mean": [], "caer_spread": [],
        "util_mean": [], "util_spread": [],
    }
    for victim in victims:
        raw_penalties: list[float] = []
        caer_penalties: list[float] = []
        utils: list[float] = []
        for seed in seeds:
            spec = benchmark(victim, l3, length=settings.length)
            batch = benchmark(
                BATCH_BENCHMARK, l3, length=settings.length
            )
            solo = run_solo(spec, machine, seed=seed)
            base = solo.latency_sensitive().completion_periods
            raw = run_colocated(spec, batch, machine, seed=seed)
            raw_penalties.append(
                raw.latency_sensitive().completion_periods / base - 1.0
            )
            managed = run_colocated(
                spec,
                batch,
                machine,
                caer_factory=caer_factory(CaerConfig.rule_based()),
                seed=seed,
            )
            caer_penalties.append(
                managed.latency_sensitive().completion_periods / base
                - 1.0
            )
            utils.append(utilization_gained(managed))
        rows.append(victim)
        for key, values in (
            ("raw", raw_penalties),
            ("caer", caer_penalties),
            ("util", utils),
        ):
            columns[f"{key}_mean"].append(statistics.mean(values))
            columns[f"{key}_spread"].append(
                max(values) - min(values)
            )

    table = FigureTable(
        title=f"Repeatability over seeds {seeds}",
        row_names=rows,
    )
    for name, values in columns.items():
        table.add_column(name, values)
    table.notes.append(
        "spread = max - min over seeds; the qualitative story must "
        "not depend on the RNG stream"
    )
    return table
