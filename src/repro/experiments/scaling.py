"""Extension experiment: scaling to multiple batch neighbours.

The paper's prototype hosts one batch application, but its architecture
(Figure 4, left) is drawn for a quad core with several applications and
batch layers that "must react together".  This experiment realises that
vision: one latency-sensitive victim against 0..3 relaunching lbm
instances, comparing raw co-location to CAER on every count.

Expected shape: the raw penalty grows with every added contender (more
L3 pressure, more memory-bandwidth load), while CAER holds the penalty
roughly flat by throttling the whole batch group — at a utilization
cost that grows with the group size.
"""

from __future__ import annotations

from ..caer.runtime import CaerConfig
from ..runspec import BATCH_BENCHMARK, ContenderSpec, RunSpec
from .campaign import CampaignSettings
from .executor import run_specs
from .reporting import FigureTable

#: Default victim of the scaling study.
DEFAULT_VICTIM = "429.mcf"


def scaling_spec(
    settings: CampaignSettings,
    victim: str,
    k: int,
    caer: CaerConfig | None = None,
) -> RunSpec:
    """The spec of ``victim`` against ``k`` lbm contenders."""
    return RunSpec(
        victim=victim,
        contenders=(ContenderSpec(BATCH_BENCHMARK),) * k,
        machine=settings.machine(),
        caer=caer,
        seed=settings.seed,
        length=settings.length,
        slices_per_period=settings.slices_per_period,
        backend=settings.backend,
    )


def scaling_study(
    settings: CampaignSettings | None = None,
    victim: str = DEFAULT_VICTIM,
    max_batch: int = 3,
    jobs: int | None = None,
) -> FigureTable:
    """Penalty and utilization vs. number of batch contenders.

    The whole matrix — the solo baseline plus a raw and a rule-based
    CAER run per contender count — is declared as specs up front and
    fanned across workers in one batch.
    """
    settings = settings or CampaignSettings.from_env()
    caer = CaerConfig.rule_based()

    specs = [scaling_spec(settings, victim, 0)]
    labels = {specs[0].digest: f"({victim}, solo)"}
    for k in range(1, max_batch + 1):
        raw = scaling_spec(settings, victim, k)
        managed = scaling_spec(settings, victim, k, caer)
        labels[raw.digest] = f"({victim}, {k} batch)"
        labels[managed.digest] = f"({victim}, {k} batch managed)"
        specs.extend((raw, managed))
    outcomes = run_specs(
        specs,
        jobs=jobs,
        describe=lambda s: labels.get(s.digest, s.describe()),
    )
    solo_periods = outcomes[0].completion_periods

    rows = [f"{k} batch" for k in range(1, max_batch + 1)]
    table = FigureTable(
        title=f"Scaling study: {victim} vs. 1..{max_batch} lbm "
              "contenders",
        row_names=rows,
    )
    columns: dict[str, list[float]] = {
        "raw_penalty": [],
        "caer_penalty": [],
        "caer_util": [],
    }
    for k in range(1, max_batch + 1):
        raw = outcomes[2 * k - 1]
        managed = outcomes[2 * k]
        columns["raw_penalty"].append(
            raw.completion_periods / solo_periods - 1.0
        )
        columns["caer_penalty"].append(
            managed.completion_periods / solo_periods - 1.0
        )
        columns["caer_util"].append(managed.utilization_gained)
    for name, values in columns.items():
        table.add_column(name, values)
    table.notes.append(
        "extension beyond the paper's 2-app prototype (its Figure 4 "
        "architecture); CAER should hold the penalty roughly flat"
    )
    return table
