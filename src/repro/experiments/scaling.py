"""Extension experiment: scaling to multiple batch neighbours.

The paper's prototype hosts one batch application, but its architecture
(Figure 4, left) is drawn for a quad core with several applications and
batch layers that "must react together".  This experiment realises that
vision: one latency-sensitive victim against 0..3 relaunching lbm
instances, comparing raw co-location to CAER on every count.

Expected shape: the raw penalty grows with every added contender (more
L3 pressure, more memory-bandwidth load), while CAER holds the penalty
roughly flat by throttling the whole batch group — at a utilization
cost that grows with the group size.
"""

from __future__ import annotations

from ..caer.metrics import utilization_gained
from ..caer.runtime import CaerConfig, caer_factory
from ..sim import run_multi_colocated, run_solo
from ..workloads import benchmark
from .campaign import BATCH_BENCHMARK, CampaignSettings
from .executor import fan_out
from .reporting import FigureTable

#: Default victim of the scaling study.
DEFAULT_VICTIM = "429.mcf"


def _scaling_worker(task: tuple) -> tuple[int, int, float]:
    """Raw and managed runs against ``k`` contenders (executor task)."""
    machine, settings, victim, k = task
    l3 = machine.l3.capacity_lines
    ls = benchmark(victim, l3, length=settings.length)
    batch = benchmark(BATCH_BENCHMARK, l3, length=settings.length)
    raw = run_multi_colocated(
        ls, [batch] * k, machine, seed=settings.seed
    )
    managed = run_multi_colocated(
        ls,
        [batch] * k,
        machine,
        caer_factory=caer_factory(CaerConfig.rule_based()),
        seed=settings.seed,
    )
    return (
        raw.latency_sensitive().completion_periods,
        managed.latency_sensitive().completion_periods,
        utilization_gained(managed),
    )


def scaling_study(
    settings: CampaignSettings | None = None,
    victim: str = DEFAULT_VICTIM,
    max_batch: int = 3,
    jobs: int | None = None,
) -> FigureTable:
    """Penalty and utilization vs. number of batch contenders."""
    settings = settings or CampaignSettings.from_env()
    machine = settings.machine()
    l3 = machine.l3.capacity_lines
    ls = benchmark(victim, l3, length=settings.length)
    solo_periods = (
        run_solo(ls, machine, seed=settings.seed)
        .latency_sensitive()
        .completion_periods
    )

    rows = [f"{k} batch" for k in range(1, max_batch + 1)]
    table = FigureTable(
        title=f"Scaling study: {victim} vs. 1..{max_batch} lbm "
              "contenders",
        row_names=rows,
    )
    results = fan_out(
        _scaling_worker,
        [
            (machine, settings, victim, k)
            for k in range(1, max_batch + 1)
        ],
        jobs=jobs,
        describe=lambda task: f"({task[2]}, {task[3]} batch)",
    )
    columns: dict[str, list[float]] = {
        "raw_penalty": [],
        "caer_penalty": [],
        "caer_util": [],
    }
    for raw, managed, util in results:
        columns["raw_penalty"].append(raw / solo_periods - 1.0)
        columns["caer_penalty"].append(managed / solo_periods - 1.0)
        columns["caer_util"].append(util)
    for name, values in columns.items():
        table.add_column(name, values)
    table.notes.append(
        "extension beyond the paper's 2-app prototype (its Figure 4 "
        "architecture); CAER should hold the penalty roughly flat"
    )
    return table
