"""Workload calibration harness.

Not part of the paper's evaluation: this tool measures each SPEC model's
solo and co-located behaviour so the parameters in
:mod:`repro.workloads.spec2006` can be tuned to the shapes of the
paper's Figures 1 and 2 (per-benchmark slowdown next to lbm and LLC-miss
profiles).  Run it as::

    python -m repro.experiments.calibrate [length] [bench ...]
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass

from ..config import MachineConfig
from ..sim import run_colocated, run_solo
from ..workloads import benchmark, benchmark_names

#: Paper Figure 1 targets: approximate slowdown of each benchmark when
#: co-located with lbm on the i7 920 (digitised; mean ~1.17).
FIGURE1_TARGETS: dict[str, float] = {
    "400.perlbench": 1.04,
    "401.bzip2": 1.08,
    "403.gcc": 1.12,
    "429.mcf": 1.36,
    "445.gobmk": 1.04,
    "456.hmmer": 1.02,
    "458.sjeng": 1.03,
    "462.libquantum": 1.28,
    "464.h264ref": 1.06,
    "471.omnetpp": 1.26,
    "473.astar": 1.16,
    "483.xalancbmk": 1.30,
    "433.milc": 1.24,
    "435.gromacs": 1.03,
    "444.namd": 1.02,
    "447.dealII": 1.10,
    "450.soplex": 1.30,
    "453.povray": 1.01,
    "454.calculix": 1.03,
    "470.lbm": 1.38,
    "482.sphinx3": 1.30,
}


@dataclass
class CalibrationRow:
    """One benchmark's measured calibration quantities."""

    name: str
    solo_periods: int
    solo_misses_per_period: float
    colo_misses_per_period: float
    slowdown: float
    target: float

    @property
    def miss_delta(self) -> float:
        """Relative change in misses/period when co-located."""
        if not self.solo_misses_per_period:
            return 0.0
        return (
            self.colo_misses_per_period / self.solo_misses_per_period - 1.0
        )


def calibrate_benchmark(
    name: str,
    machine: MachineConfig,
    length: float = 0.25,
    seed: int = 0,
) -> CalibrationRow:
    """Measure one benchmark solo and next to lbm."""
    l3 = machine.l3.capacity_lines
    spec = benchmark(name, l3, length=length)
    lbm = benchmark("470.lbm", l3, length=length)
    solo = run_solo(spec, machine, seed=seed)
    colo = run_colocated(spec, lbm, machine, seed=seed)
    ls_solo = solo.latency_sensitive()
    ls_colo = colo.latency_sensitive()
    solo_p = ls_solo.completion_periods
    colo_p = ls_colo.completion_periods
    return CalibrationRow(
        name=name,
        solo_periods=solo_p,
        solo_misses_per_period=ls_solo.total_llc_misses() / solo_p,
        colo_misses_per_period=ls_colo.total_llc_misses() / colo_p,
        slowdown=colo_p / solo_p,
        target=FIGURE1_TARGETS.get(name, float("nan")),
    )


def main(argv: list[str] | None = None) -> None:
    """Print the calibration table for the requested benchmarks."""
    args = list(sys.argv[1:] if argv is None else argv)
    length = 0.25
    if args and args[0].replace(".", "").isdigit():
        length = float(args.pop(0))
    names = args or list(benchmark_names())
    machine = MachineConfig.scaled_nehalem()
    print(
        f"{'benchmark':<18} {'periods':>7} {'solo m/p':>9} "
        f"{'colo m/p':>9} {'dmiss':>7} {'slow':>6} {'target':>6}"
    )
    slowdowns = []
    for name in names:
        t0 = time.time()
        row = calibrate_benchmark(name, machine, length=length)
        slowdowns.append(row.slowdown)
        print(
            f"{row.name:<18} {row.solo_periods:>7} "
            f"{row.solo_misses_per_period:>9.1f} "
            f"{row.colo_misses_per_period:>9.1f} "
            f"{row.miss_delta:>+7.0%} {row.slowdown:>6.3f} "
            f"{row.target:>6.2f}  ({time.time() - t0:.1f}s)"
        )
    mean = sum(slowdowns) / len(slowdowns)
    print(f"{'mean':<18} {'':>7} {'':>9} {'':>9} {'':>7} {mean:>6.3f} "
          f"{1.17:>6.2f}")


if __name__ == "__main__":
    main()
