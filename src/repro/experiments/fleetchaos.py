"""The chaos frontier: fleet SLO vs. throughput as node faults rise.

The fleet layer's headline experiment.  One row per node-fault
intensity; each row runs full fleet episodes under
:meth:`~repro.faults.NodeFaultPlan.scaled` chaos (node crashes,
telemetry blackouts, stragglers), averaged over a few fault seeds so a
single lucky/unlucky crash schedule cannot masquerade as the trend.
Columns:

* ``slo`` — fleet-wide LS SLO attainment (fraction of
  latency-sensitive jobs finishing within the spec's stretch budget);
* ``batch_tput`` — batch progress per tick across the fleet;
* ``rescheduled`` / ``migrations`` — failover and contention-eviction
  work the controller performed;
* ``lost`` — jobs neither completed nor still tracked.  The journal-
  backed reschedule path makes this **zero by construction**; the
  column is the acceptance check, not a tunable.
* ``dead`` / ``quarantined`` — mean nodes declared dead / quarantined.

Graceful degradation is the claim: at low intensity (≤ 0.2) SLO
attainment stays at its floor or above while batch throughput bends
smoothly, never cliffs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ExperimentError
from ..faults.nodes import NodeFaultPlan
from .reporting import FigureTable

if TYPE_CHECKING:
    from ..fleet import FleetResult, FleetSpec, NodeRunProfile

#: Intensities swept by default: the clean fleet, the acceptance
#: band's edge (0.2), and the deep-chaos tail.
DEFAULT_INTENSITIES = (0.0, 0.1, 0.2, 0.4, 0.7, 1.0)

#: Fault seeds averaged per intensity.
DEFAULT_REPEATS = 3

#: The stated LS SLO floor inside the acceptance band (intensity
#: ≤ 0.2): at least two of three LS jobs must meet their stretch
#: budget.  Empirically the fleet holds 100% there; the floor leaves
#: room for future job mixes without weakening the zero-loss claim.
SLO_FLOOR = 2.0 / 3.0

#: The acceptance band's upper edge.
SLO_FLOOR_INTENSITY = 0.2


def episode_results(
    profiles: dict[str, "NodeRunProfile"],
    spec: "FleetSpec",
    intensity: float,
    fault_seed: int,
    repeats: int,
) -> list["FleetResult"]:
    """Run ``repeats`` episodes at one intensity, one per fault seed."""
    import dataclasses

    # Imported here, not at module scope: the fleet package sits on
    # top of the experiments layer (it reuses the resilience journal),
    # so a module-level import would be circular.
    from ..fleet import FleetEpisode

    results = []
    for repeat in range(repeats):
        plan = (
            None
            if intensity == 0.0
            else NodeFaultPlan.scaled(intensity, seed=fault_seed + repeat)
        )
        seeded = dataclasses.replace(spec, node_faults=plan)
        results.append(FleetEpisode(seeded, profiles).run())
    return results


def chaos_frontier(
    source,
    spec: "FleetSpec | None" = None,
    intensities: tuple[float, ...] = DEFAULT_INTENSITIES,
    fault_seed: int = 0,
    repeats: int = DEFAULT_REPEATS,
) -> FigureTable:
    """Sweep node-fault intensity; one averaged row per intensity.

    ``source`` supplies the node calibration runs (see
    :func:`~repro.fleet.build_profiles`) — pass the campaign so the
    calibration shares the figure cache.  Episodes are deterministic
    per (spec, intensity, fault seed); the table is therefore
    bit-reproducible.
    """
    if not intensities:
        raise ExperimentError("chaos frontier needs at least one intensity")
    if repeats < 1:
        raise ExperimentError(f"repeats must be >= 1, got {repeats}")
    from ..fleet import FleetSpec, build_profiles

    spec = spec or FleetSpec()
    profiles = build_profiles(source, spec)
    rows: list[list[FleetResult]] = [
        episode_results(profiles, spec, intensity, fault_seed, repeats)
        for intensity in intensities
    ]

    def mean(values: list[float]) -> float:
        return sum(values) / len(values)

    table = FigureTable(
        title=f"Chaos frontier — {spec.describe()}",
        row_names=[f"i={intensity:g}" for intensity in intensities],
    )
    table.add_column(
        "slo", [mean([r.slo_attainment for r in row]) for row in rows]
    )
    table.add_column(
        "batch_tput",
        [mean([r.batch_throughput for r in row]) for row in rows],
    )
    table.add_column(
        "rescheduled",
        [mean([r.jobs_rescheduled for r in row]) for row in rows],
    )
    table.add_column(
        "migrations",
        [mean([r.migrations for r in row]) for row in rows],
    )
    table.add_column(
        "lost", [mean([r.jobs_lost for r in row]) for row in rows]
    )
    table.add_column(
        "dead", [mean([r.nodes_dead for r in row]) for row in rows]
    )
    table.add_column(
        "quarantined",
        [mean([r.nodes_quarantined for r in row]) for row in rows],
    )
    table.notes.append(
        f"each row averages {repeats} fleet episodes (fault seeds "
        f"{fault_seed}..{fault_seed + repeats - 1}); episodes are "
        f"deterministic per seed"
    )
    table.notes.append(
        f"acceptance band: at intensity <= {SLO_FLOOR_INTENSITY:g} the "
        f"LS SLO floor is {SLO_FLOOR:.0%} and lost must be 0 "
        f"(journal-backed rescheduling)"
    )
    return table
