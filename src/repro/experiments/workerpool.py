"""Persistent spec workers: warm fan-out without per-batch spawns.

:func:`~repro.experiments.executor.fan_out` pays a full
:class:`~concurrent.futures.ProcessPoolExecutor` spin-up — process
forks, pickled module state, pool teardown — for *every* batch.  A
campaign is hundreds of small batches over the same few dozen specs,
so the spawn tax dominates short runs.  This module keeps one warm
pool of worker processes alive across batches:

* **Spec interning** — a worker remembers every spec it has executed,
  keyed by content digest; re-dispatching the same spec sends only the
  digest string over the task queue (the ``executor.worker_reuse``
  gauge counts these digest-only dispatches).
* **Zero-copy results** — each worker owns a
  :class:`multiprocessing.shared_memory.SharedMemory` SPSC ring
  buffer; outcomes come back as pickled payloads written straight into
  the ring (the worker's result pipe then carries only a tiny header),
  falling back to pipe pickling when a payload outgrows the free ring
  space.  Result pipes are strictly per-worker: no lock is ever shared
  between worker processes, so a worker dying mid-send (chaos ``die``,
  OOM kill) can corrupt only its own channel — never wedge the
  others'.
* **Per-task environment forwarding** — the ``REPRO_*`` environment is
  snapshotted at dispatch and replayed in the worker, so env-driven
  behaviour (chaos, tracing, tier gates) tracks the parent exactly as
  it did when every batch forked fresh processes.
* **Failure containment** — a worker that dies (chaos ``die``, OOM
  kill) or outlives a per-task timeout is killed and respawned; only
  its in-flight task fails, with the same failure identity the cold
  path reports.

The pool is an implementation detail behind
:func:`~repro.experiments.executor.run_specs` and the resilient
executor's parallel rounds; ``REPRO_WARM_POOL=0`` restores the cold
per-batch pools.  One task is in flight per worker at a time, so
dispatch-to-result spans are exact and a kill loses exactly one task.
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from multiprocessing import get_context, shared_memory
from typing import Callable, Sequence

from ..faults.chaos import maybe_inject
from ..obs.heartbeat import beacon_dir, write_beacon
from ..runspec import RunSpec

#: Gate (default on): ``0``/``false``/``off`` restores the cold
#: per-batch :class:`~concurrent.futures.ProcessPoolExecutor` path.
WARM_POOL_ENV = "REPRO_WARM_POOL"

#: Per-worker result ring capacity.  Outcomes are a few KiB; a ring
#: this size never overflows in practice, and the queue-pickle
#: fallback keeps correctness when one does.
RING_BYTES = 1 << 20

#: Ring header: two little-endian uint64 cursors (head, tail).
_HEADER = 16

#: Liveness/deadline poll cadence while waiting for results.
_POLL_SECONDS = 0.05

#: Only this namespace is forwarded per task; everything else the
#: worker inherited at fork and never needs refreshed.
_ENV_PREFIX = "REPRO_"


def warm_pool_enabled() -> bool:
    """Whether the persistent pool backs parallel spec execution."""
    return os.environ.get(WARM_POOL_ENV, "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


# -- SPSC ring ---------------------------------------------------------
#
# Layout: bytes [0, 8) the write cursor (head, worker-owned), [8, 16)
# the read cursor (tail, parent-owned), the rest the data area.  Both
# cursors grow monotonically; position = cursor % data_size.  Single
# writer per cursor makes the protocol race-free: the worker only
# writes payload bytes the parent has already consumed (head - tail is
# the unread span), and the parent only reads bytes the header message
# on the worker's result pipe has announced.

def _ring_write(buf, data: bytes) -> bool:
    """Append ``data`` to the ring; False when it does not fit."""
    size = len(buf) - _HEADER
    need = len(data)
    head = int.from_bytes(buf[0:8], "little")
    tail = int.from_bytes(buf[8:16], "little")
    if need > size - (head - tail):
        return False
    pos = head % size
    first = min(need, size - pos)
    buf[_HEADER + pos:_HEADER + pos + first] = data[:first]
    if first < need:
        buf[_HEADER:_HEADER + need - first] = data[first:]
    buf[0:8] = (head + need).to_bytes(8, "little")
    return True


def _ring_read(buf, length: int) -> bytes:
    """Consume ``length`` announced bytes from the ring."""
    size = len(buf) - _HEADER
    tail = int.from_bytes(buf[8:16], "little")
    pos = tail % size
    first = min(length, size - pos)
    data = bytes(buf[_HEADER + pos:_HEADER + pos + first])
    if first < length:
        data += bytes(buf[_HEADER:_HEADER + length - first])
    buf[8:16] = (tail + length).to_bytes(8, "little")
    return data


# -- worker process ----------------------------------------------------

def _apply_env(env: dict[str, str]) -> None:
    """Make the worker's ``REPRO_*`` namespace equal the snapshot."""
    for key in [k for k in os.environ if k.startswith(_ENV_PREFIX)]:
        if key not in env:
            del os.environ[key]
    for key, value in env.items():
        if os.environ.get(key) != value:
            os.environ[key] = value


class _WorkerStatus:
    """Per-worker heartbeat state: cumulative counters + beacon writes.

    Entirely best-effort: every method swallows its own errors, because
    a heartbeat must never fail (or slow) the task it describes.  The
    beacon directory is re-read per task since ``REPRO_BEACON_DIR``
    rides the per-task env snapshot like every other ``REPRO_*`` knob.
    """

    def __init__(self, worker_id: int):
        self.name = f"worker-{worker_id}"
        self.tasks_completed = 0
        self.tasks_failed = 0
        self.reused_dispatches = 0
        self.detector_verdicts = 0.0
        self.detector_positives = 0.0
        self.last_span_seconds = 0.0

    def _emit(self, state: str, digest: str | None) -> None:
        directory = beacon_dir()
        if directory is None:
            return
        write_beacon(
            directory,
            self.name,
            {
                "state": state,
                "digest": digest,
                "tasks_completed": self.tasks_completed,
                "tasks_failed": self.tasks_failed,
                "reused_dispatches": self.reused_dispatches,
                "detector_verdicts": self.detector_verdicts,
                "detector_positives": self.detector_positives,
                "last_span_seconds": round(self.last_span_seconds, 6),
            },
        )

    def task_started(self, digest: str, reused: bool) -> None:
        try:
            if reused:
                self.reused_dispatches += 1
            self._emit("running", digest)
        except Exception:
            pass

    def task_finished(
        self, ok: bool, result: object, seconds: float
    ) -> None:
        try:
            if ok:
                self.tasks_completed += 1
            else:
                self.tasks_failed += 1
            self.last_span_seconds = seconds
            telemetry = getattr(result, "telemetry", None)
            if isinstance(telemetry, dict):
                metrics = telemetry.get("metrics", {})

                def counter(name: str) -> float:
                    entry = metrics.get(name)
                    return entry["value"] if entry else 0.0

                positives = counter("caer.verdicts_positive")
                self.detector_positives += positives
                self.detector_verdicts += positives + counter(
                    "caer.verdicts_negative"
                )
            self._emit("idle", None)
        except Exception:
            pass


def _worker_main(
    worker_id: int, task_q, result_conn, shm_name: str
) -> None:
    """Worker loop: intern specs, execute, ship outcomes via the ring.

    Result messages are ``(worker_id, key, ok, reused, in_ring,
    payload)`` where ``payload`` is the pickled byte count when
    ``in_ring`` else the pickled bytes themselves.  ``ok=False``
    payloads unpickle to the raised exception, preserving the cold
    path's per-run failure identities.  ``result_conn`` is this
    worker's private pipe end — sends are synchronous in this thread
    (no feeder thread, no shared lock), so a death at any instant
    leaves every other worker's result path untouched.
    """
    from .executor import _execute_spec

    shm = shared_memory.SharedMemory(name=shm_name)
    buf = shm.buf
    specs: dict[str, RunSpec] = {}
    status = _WorkerStatus(worker_id)
    try:
        while True:
            msg = task_q.get()
            if msg is None:
                break
            key, payload, attempt, env = msg
            _apply_env(env)
            if isinstance(payload, str):
                spec = specs[payload]
                reused = True
            else:
                spec = payload
                specs[spec.digest] = spec
                reused = False
            status.task_started(spec.digest, reused)
            started = time.perf_counter()
            try:
                if attempt is not None:
                    maybe_inject(spec, attempt)
                result: object = _execute_spec(spec)
                ok = True
            except BaseException as exc:  # shipped, not swallowed
                result = exc
                ok = False
            status.task_finished(
                ok, result, time.perf_counter() - started
            )
            try:
                data = pickle.dumps(result, pickle.HIGHEST_PROTOCOL)
            except Exception as exc:
                ok = False
                data = pickle.dumps(
                    RuntimeError(f"unpicklable result: {exc!r}")
                )
            in_ring = _ring_write(buf, data)
            result_conn.send((
                worker_id, key, ok, reused, in_ring,
                len(data) if in_ring else data,
            ))
    finally:
        buf = None
        shm.close()


# -- parent-side pool --------------------------------------------------

@dataclass
class WorkerFailure:
    """A task the pool could not turn into an outcome."""

    error: BaseException | None
    timed_out: bool = False
    died: bool = False
    message: str = ""

    def describe(self) -> str:
        if self.message:
            return self.message
        return repr(self.error)


@dataclass
class _Worker:
    """Parent-side handle of one persistent worker process."""

    process: object
    task_q: object
    #: parent read end of this worker's private result pipe
    conn: object
    shm: shared_memory.SharedMemory
    known: set[str] = field(default_factory=set)
    #: (key, spec, attempt) currently executing, None when idle
    busy: tuple | None = None
    deadline: float | None = None
    started: float = 0.0


class SpecWorkerPool:
    """A warm, fixed-size pool of persistent spec workers.

    One task in flight per worker; :meth:`map_specs` drives a whole
    batch and returns per-key outcomes or :class:`WorkerFailure`
    markers.  The pool survives across batches — that is the point —
    and :func:`get_pool` keeps a process-wide singleton sized to the
    campaign's ``--jobs``.
    """

    def __init__(self, jobs: int, ring_bytes: int = RING_BYTES):
        self.jobs = jobs
        self._ring_bytes = ring_bytes
        self._ctx = get_context("fork")
        self._workers: dict[int, _Worker] = {}
        self._next_id = 0
        self._closed = False
        #: cumulative digest-only dispatches (spec already interned)
        self.reuse_hits = 0
        #: digest-only dispatches in the most recent map_specs batch
        self.last_batch_reuse = 0
        #: workers respawned after a death or timeout kill
        self.respawns = 0
        for _ in range(jobs):
            self._spawn()

    # -- lifecycle -----------------------------------------------------

    def _spawn(self) -> int:
        wid = self._next_id
        self._next_id += 1
        shm = shared_memory.SharedMemory(
            create=True, size=_HEADER + self._ring_bytes
        )
        shm.buf[0:_HEADER] = b"\x00" * _HEADER
        task_q = self._ctx.Queue()
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(wid, task_q, send_conn, shm.name),
            daemon=True,
            name=f"repro-spec-worker-{wid}",
        )
        process.start()
        # Drop the parent's copy of the write end so a worker death
        # shows up as EOF on the read end instead of a silent stall.
        send_conn.close()
        self._workers[wid] = _Worker(
            process=process, task_q=task_q, conn=recv_conn, shm=shm
        )
        return wid

    def _retire(self, wid: int, kill: bool) -> None:
        """Drop one worker (killing it if asked) and free its ring."""
        worker = self._workers.pop(wid)
        if kill:
            worker.process.terminate()
        worker.process.join(timeout=2.0)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=2.0)
        worker.task_q.close()
        worker.conn.close()
        worker.shm.close()
        try:
            worker.shm.unlink()
        except FileNotFoundError:
            pass

    def close(self) -> None:
        """Shut every worker down and release the shared rings."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers.values():
            if worker.busy is None and worker.process.is_alive():
                try:
                    worker.task_q.put(None)
                except (OSError, ValueError):
                    pass
        for wid in list(self._workers):
            self._retire(wid, kill=self._workers[wid].busy is not None)

    # -- dispatch ------------------------------------------------------

    def _dispatch(
        self,
        worker: _Worker,
        task: tuple,
        timeout: float | None,
        env: dict[str, str],
    ) -> None:
        key, spec, attempt = task
        if spec.digest in worker.known:
            payload: object = spec.digest
            self.reuse_hits += 1
            self.last_batch_reuse += 1
        else:
            payload = spec
            worker.known.add(spec.digest)
        worker.busy = task
        worker.started = time.monotonic()
        worker.deadline = (
            worker.started + timeout if timeout is not None else None
        )
        worker.task_q.put((key, payload, attempt, env))

    def map_specs(
        self,
        tasks: Sequence[tuple[object, RunSpec, int | None]],
        timeout: float | None = None,
        on_result: Callable[[object, object, float], None] | None = None,
    ) -> dict:
        """Run ``(key, spec, attempt)`` tasks; outcomes keyed by key.

        ``attempt`` arms the chaos hook (``None`` skips it, matching
        the non-resilient executor).  Values are :class:`RunOutcome`
        on success and :class:`WorkerFailure` otherwise: an exception
        shipped back from the worker, a per-task ``timeout`` expiry
        (the worker is killed and respawned), or a worker death.
        ``on_result(key, value, span_seconds)`` fires as each task
        settles, span measured dispatch-to-result.  Any exception that
        escapes the batch — a worker exception that is not an
        :class:`Exception` (chaos ``interrupt``'s
        :exc:`KeyboardInterrupt`), Ctrl-C in this process, or an
        ``on_result`` checkpoint failure — tears the whole pool down
        before re-raising, so no orphan worker keeps simulating and a
        fresh pool starts clean: the cold path's abandonment posture.
        """
        self.last_batch_reuse = 0
        results: dict = {}
        pending = deque(tasks)
        env = {
            k: v for k, v in os.environ.items()
            if k.startswith(_ENV_PREFIX)
        }

        def settle(key: object, value: object, span: float) -> None:
            results[key] = value
            if on_result is not None:
                on_result(key, value, span)

        try:
            while pending or any(
                w.busy is not None for w in self._workers.values()
            ):
                for worker in self._workers.values():
                    if not pending:
                        break
                    if worker.busy is None:
                        self._dispatch(
                            worker, pending.popleft(), timeout, env
                        )
                now = time.monotonic()
                wait = _POLL_SECONDS
                for worker in self._workers.values():
                    if (worker.busy is not None
                            and worker.deadline is not None):
                        wait = min(
                            wait, max(worker.deadline - now, 0.001)
                        )
                ready = mp_connection.wait(
                    [w.conn for w in self._workers.values()],
                    timeout=wait,
                )
                messages = []
                for conn in ready:
                    try:
                        messages.append(conn.recv())
                    except (EOFError, OSError):
                        # The worker died; the liveness sweep below
                        # retires and replaces it.
                        pass
                for msg in messages:
                    wid, key, ok, _reused, in_ring, payload = msg
                    worker = self._workers.get(wid)
                    if worker is None or worker.busy is None \
                            or worker.busy[0] != key:
                        continue  # stale: its worker was retired
                    data = (
                        _ring_read(worker.shm.buf, payload)
                        if in_ring else payload
                    )
                    value = pickle.loads(data)
                    span = time.monotonic() - worker.started
                    worker.busy = None
                    worker.deadline = None
                    if ok:
                        settle(key, value, span)
                    elif isinstance(value, Exception):
                        settle(key, WorkerFailure(error=value), span)
                    else:
                        # KeyboardInterrupt and kin: abandon the
                        # batch the way the cold path does.
                        raise value
                now = time.monotonic()
                for wid in list(self._workers):
                    worker = self._workers[wid]
                    if worker.busy is None:
                        if not worker.process.is_alive():
                            # Died between tasks: no task to fail, but
                            # replace it so its EOF'd pipe doesn't turn
                            # every wait() into a spin.
                            self._retire(wid, kill=False)
                            self._spawn()
                            self.respawns += 1
                        continue
                    key, _spec, _attempt = worker.busy
                    if not worker.process.is_alive():
                        code = worker.process.exitcode
                        span = now - worker.started
                        self._retire(wid, kill=False)
                        self._spawn()
                        self.respawns += 1
                        settle(
                            key,
                            WorkerFailure(
                                error=None, died=True,
                                message=(
                                    "worker died with exit code "
                                    f"{code}"
                                ),
                            ),
                            span,
                        )
                    elif (worker.deadline is not None
                            and now > worker.deadline):
                        span = now - worker.started
                        self._retire(wid, kill=True)
                        self._spawn()
                        self.respawns += 1
                        settle(
                            key,
                            WorkerFailure(error=None, timed_out=True),
                            span,
                        )
        except BaseException:
            self.close()
            _reset_singleton(self)
            raise
        return results


# -- process-wide singleton --------------------------------------------

_pool: SpecWorkerPool | None = None
_atexit_registered = False


def _reset_singleton(pool: SpecWorkerPool) -> None:
    global _pool
    if _pool is pool:
        _pool = None


def get_pool(jobs: int) -> SpecWorkerPool:
    """The shared warm pool, (re)sized to ``jobs`` workers.

    Campaigns call this per batch; the pool persists between calls —
    resizing (a changed ``--jobs``) is the only thing that recycles
    the workers and their interned spec state.
    """
    global _pool, _atexit_registered
    if _pool is not None and _pool.jobs != jobs:
        _pool.close()
        _pool = None
    if _pool is None:
        _pool = SpecWorkerPool(jobs)
        if not _atexit_registered:
            atexit.register(shutdown_pool)
            _atexit_registered = True
    return _pool


def shutdown_pool() -> None:
    """Close the singleton pool (tests and interpreter exit)."""
    global _pool
    if _pool is not None:
        _pool.close()
        _pool = None
