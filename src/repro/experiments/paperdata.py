"""Digitised reference values from the paper.

These are the quantities the reproduction compares itself against.
Headline numbers are quoted directly from the paper's text (§1, §6);
per-benchmark values were read off the published figures and are
therefore approximate — EXPERIMENTS.md records measured-vs-paper for
every artefact.
"""

from __future__ import annotations

#: The paper's machine, for reports.
PAPER_MACHINE = "Intel Core i7 920 (Nehalem), 4 cores, 8 MB shared L3"

#: §1/§6: mean cross-core interference penalty of raw co-location.
PAPER_MEAN_RAW_PENALTY = 0.17

#: §6.2: mean penalty under CAER with the burst-shutter heuristic.
PAPER_MEAN_SHUTTER_PENALTY = 0.06

#: §1/§6.2: mean penalty under CAER with the rule-based heuristic.
PAPER_MEAN_RULE_PENALTY = 0.04

#: §6.2: utilization gained by CAER burst-shutter ("close to 60%").
PAPER_MEAN_SHUTTER_UTILIZATION = 0.60

#: §1/§6.2: utilization gained by CAER rule-based.
PAPER_MEAN_RULE_UTILIZATION = 0.58

#: Figure 1 (approximate, digitised): slowdown of each benchmark when
#: co-located with lbm.  The paper's mean is 1.17; "in many cases we
#: see a performance degradation exceeding 30%" (§2).
FIGURE1_SLOWDOWN: dict[str, float] = {
    "400.perlbench": 1.04,
    "401.bzip2": 1.08,
    "403.gcc": 1.12,
    "429.mcf": 1.36,
    "445.gobmk": 1.04,
    "456.hmmer": 1.02,
    "458.sjeng": 1.03,
    "462.libquantum": 1.28,
    "464.h264ref": 1.06,
    "471.omnetpp": 1.26,
    "473.astar": 1.16,
    "483.xalancbmk": 1.30,
    "433.milc": 1.24,
    "435.gromacs": 1.03,
    "444.namd": 1.02,
    "447.dealII": 1.10,
    "450.soplex": 1.30,
    "453.povray": 1.01,
    "454.calculix": 1.03,
    "470.lbm": 1.38,
    "482.sphinx3": 1.30,
}

#: §6.3: the paper's named sensitivity examples.
PAPER_MCF_SLOWDOWN = 1.36
PAPER_NAMD_SLOWDOWN = 1.02

#: §6.3: utilization sacrificed for mcf relative to random (Figure 9
#: reading): burst-shutter gives up 36% more utilization than random,
#: rule-based 80% more — i.e. accuracy A = -0.36 and -0.80.
PAPER_MCF_SHUTTER_ACCURACY = -0.36
PAPER_MCF_RULE_ACCURACY = -0.80

def _ranked() -> list[str]:
    return sorted(FIGURE1_SLOWDOWN, key=lambda n: FIGURE1_SLOWDOWN[n])


#: Figures 9/10: the six most / least cross-core-interference-sensitive
#: benchmarks, ranked by Figure 1 slowdown (the paper defines
#: sensitivity exactly this way in §6.3).
MOST_SENSITIVE: tuple[str, ...] = tuple(_ranked()[-6:][::-1])
LEAST_SENSITIVE: tuple[str, ...] = tuple(_ranked()[:6])

#: Figure 2 (approximate, digitised): whole-run LLC misses, alone, in
#: units of 1e9 — used only to compare the *relative* miss profile
#: across benchmarks (who misses a lot vs. a little).
FIGURE2_MISSES_ALONE_1E9: dict[str, float] = {
    "400.perlbench": 0.6,
    "401.bzip2": 2.0,
    "403.gcc": 2.5,
    "429.mcf": 22.0,
    "445.gobmk": 0.6,
    "456.hmmer": 0.2,
    "458.sjeng": 0.3,
    "462.libquantum": 25.0,
    "464.h264ref": 0.9,
    "471.omnetpp": 13.0,
    "473.astar": 5.0,
    "483.xalancbmk": 14.0,
    "433.milc": 18.0,
    "435.gromacs": 0.7,
    "444.namd": 0.3,
    "447.dealII": 3.0,
    "450.soplex": 16.0,
    "453.povray": 0.1,
    "454.calculix": 0.4,
    "470.lbm": 28.0,
    "482.sphinx3": 17.0,
}
