"""Alternative contenders (§6.1).

The paper: "We have performed complete runs using other benchmarks such
as libquantum and milc and produced very similar results.  Note that
adversaries that make light usage of the L3 cache present more trivial
scenarios."  This experiment verifies both halves of that claim on a
representative victim panel: the heavy contenders (lbm, libquantum,
milc) must produce the same qualitative picture — substantial raw
penalty on sensitive victims, CAER removing most of it — while a light
contender (namd) must produce almost no interference for CAER to
manage.
"""

from __future__ import annotations

from ..caer.runtime import CaerConfig
from ..runspec import ContenderSpec, RunSpec
from .campaign import CampaignSettings
from .executor import run_specs
from .reporting import FigureTable

#: The paper's heavy contenders, plus one light adversary as control.
CONTENDERS = ("470.lbm", "462.libquantum", "433.milc", "444.namd")

#: Victims spanning the sensitivity range.
VICTIM_PANEL = ("429.mcf", "483.xalancbmk", "473.astar", "444.namd")


def contender_study(
    settings: CampaignSettings | None = None,
    contenders: tuple[str, ...] = CONTENDERS,
    victims: tuple[str, ...] = VICTIM_PANEL,
    caer: CaerConfig | None = None,
    jobs: int | None = None,
) -> FigureTable:
    """Raw and CAER-managed penalty for every (victim, contender) pair.

    Rows are ``victim vs contender``; the CAER configuration defaults
    to rule-based (the paper's best performer).  Every run — solo
    baselines, raw pairs, managed pairs — is one declarative spec, and
    the whole matrix fans across worker processes in a single batch.
    """
    settings = settings or CampaignSettings.from_env()
    caer = caer or CaerConfig.rule_based()
    machine = settings.machine()

    def spec(
        victim: str,
        contender: str | None = None,
        config: CaerConfig | None = None,
    ) -> RunSpec:
        return RunSpec(
            victim=victim,
            contenders=(
                (ContenderSpec(contender),) if contender else ()
            ),
            machine=machine,
            caer=config,
            seed=settings.seed,
            length=settings.length,
            slices_per_period=settings.slices_per_period,
            backend=settings.backend,
        )

    solo_outcomes = run_specs(
        [spec(victim) for victim in victims], jobs=jobs
    )
    solo_periods = dict(
        zip(victims, (o.completion_periods for o in solo_outcomes))
    )

    pairs = [
        (victim, contender)
        for contender in contenders
        for victim in victims
        if victim != contender
    ]
    rows = [f"{victim} vs {contender}" for victim, contender in pairs]
    # Raw and managed runs of every pair, interleaved in one batch.
    pair_specs: list[RunSpec] = []
    labels: dict[str, str] = {}
    for victim, contender in pairs:
        raw_spec = spec(victim, contender)
        managed_spec = spec(victim, contender, caer)
        labels[raw_spec.digest] = f"({victim}, vs {contender})"
        labels[managed_spec.digest] = (
            f"({victim}, vs {contender} managed)"
        )
        pair_specs.extend((raw_spec, managed_spec))
    pair_outcomes = run_specs(
        pair_specs,
        jobs=jobs,
        describe=lambda s: labels.get(s.digest, s.describe()),
    )

    raw_penalties: list[float] = []
    caer_penalties: list[float] = []
    caer_utils: list[float] = []
    for index, (victim, _contender) in enumerate(pairs):
        raw = pair_outcomes[2 * index]
        managed = pair_outcomes[2 * index + 1]
        base = solo_periods[victim]
        raw_penalties.append(raw.completion_periods / base - 1.0)
        caer_penalties.append(managed.completion_periods / base - 1.0)
        caer_utils.append(managed.utilization_gained)

    table = FigureTable(
        title="Alternative contenders (§6.1): penalty by pair",
        row_names=rows,
    )
    table.add_column("raw_penalty", raw_penalties)
    table.add_column("caer_penalty", caer_penalties)
    table.add_column("caer_util", caer_utils)
    table.notes.append(
        "paper: heavy contenders (lbm/libquantum/milc) give 'very "
        "similar results'; light adversaries are 'more trivial'"
    )
    return table


def heavy_contender_agreement(table: FigureTable) -> float:
    """Max spread of mean raw penalty across the heavy contenders.

    Small spread = the §6.1 "very similar results" claim holds.  Rows
    involving the light control contender are excluded.
    """
    heavy = [c for c in CONTENDERS if c != "444.namd"]
    means: list[float] = []
    for contender in heavy:
        values = [
            penalty
            for row, penalty in zip(
                table.row_names, table.column("raw_penalty")
            )
            if row.endswith(f"vs {contender}")
        ]
        if values:
            means.append(sum(values) / len(values))
    return max(means) - min(means) if means else 0.0
