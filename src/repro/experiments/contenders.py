"""Alternative contenders (§6.1).

The paper: "We have performed complete runs using other benchmarks such
as libquantum and milc and produced very similar results.  Note that
adversaries that make light usage of the L3 cache present more trivial
scenarios."  This experiment verifies both halves of that claim on a
representative victim panel: the heavy contenders (lbm, libquantum,
milc) must produce the same qualitative picture — substantial raw
penalty on sensitive victims, CAER removing most of it — while a light
contender (namd) must produce almost no interference for CAER to
manage.
"""

from __future__ import annotations

from ..caer.metrics import utilization_gained
from ..caer.runtime import CaerConfig, caer_factory
from ..sim import run_colocated, run_solo
from ..workloads import benchmark
from .campaign import CampaignSettings
from .executor import fan_out
from .reporting import FigureTable

#: The paper's heavy contenders, plus one light adversary as control.
CONTENDERS = ("470.lbm", "462.libquantum", "433.milc", "444.namd")

#: Victims spanning the sensitivity range.
VICTIM_PANEL = ("429.mcf", "483.xalancbmk", "473.astar", "444.namd")


def _solo_worker(task: tuple) -> int:
    machine, settings, victim = task
    result = run_solo(
        benchmark(victim, machine.l3.capacity_lines,
                  length=settings.length),
        machine,
        seed=settings.seed,
    )
    return result.latency_sensitive().completion_periods


def _pair_worker(task: tuple) -> tuple[int, int, float]:
    """(raw periods, managed periods, managed utilization) of one pair."""
    machine, settings, victim, contender, caer = task
    l3 = machine.l3.capacity_lines
    victim_spec = benchmark(victim, l3, length=settings.length)
    contender_spec = benchmark(contender, l3, length=settings.length)
    raw = run_colocated(
        victim_spec, contender_spec, machine, seed=settings.seed
    )
    managed = run_colocated(
        victim_spec,
        contender_spec,
        machine,
        caer_factory=caer_factory(caer),
        seed=settings.seed,
    )
    return (
        raw.latency_sensitive().completion_periods,
        managed.latency_sensitive().completion_periods,
        utilization_gained(managed),
    )


def contender_study(
    settings: CampaignSettings | None = None,
    contenders: tuple[str, ...] = CONTENDERS,
    victims: tuple[str, ...] = VICTIM_PANEL,
    caer: CaerConfig | None = None,
    jobs: int | None = None,
) -> FigureTable:
    """Raw and CAER-managed penalty for every (victim, contender) pair.

    Rows are ``victim vs contender``; the CAER configuration defaults
    to rule-based (the paper's best performer).  Both the solo
    baselines and the per-pair runs fan across worker processes.
    """
    settings = settings or CampaignSettings.from_env()
    caer = caer or CaerConfig.rule_based()
    machine = settings.machine()

    solo_results = fan_out(
        _solo_worker,
        [(machine, settings, victim) for victim in victims],
        jobs=jobs,
        describe=lambda task: f"({task[2]}, solo)",
    )
    solo_periods = dict(zip(victims, solo_results))

    pairs = [
        (victim, contender)
        for contender in contenders
        for victim in victims
        if victim != contender
    ]
    rows = [f"{victim} vs {contender}" for victim, contender in pairs]
    pair_results = fan_out(
        _pair_worker,
        [
            (machine, settings, victim, contender, caer)
            for victim, contender in pairs
        ],
        jobs=jobs,
        describe=lambda task: f"({task[2]}, vs {task[3]})",
    )

    raw_penalties: list[float] = []
    caer_penalties: list[float] = []
    caer_utils: list[float] = []
    for (victim, _contender), (raw, managed, util) in zip(
        pairs, pair_results
    ):
        base = solo_periods[victim]
        raw_penalties.append(raw / base - 1.0)
        caer_penalties.append(managed / base - 1.0)
        caer_utils.append(util)

    table = FigureTable(
        title="Alternative contenders (§6.1): penalty by pair",
        row_names=rows,
    )
    table.add_column("raw_penalty", raw_penalties)
    table.add_column("caer_penalty", caer_penalties)
    table.add_column("caer_util", caer_utils)
    table.notes.append(
        "paper: heavy contenders (lbm/libquantum/milc) give 'very "
        "similar results'; light adversaries are 'more trivial'"
    )
    return table


def heavy_contender_agreement(table: FigureTable) -> float:
    """Max spread of mean raw penalty across the heavy contenders.

    Small spread = the §6.1 "very similar results" claim holds.  Rows
    involving the light control contender are excluded.
    """
    heavy = [c for c in CONTENDERS if c != "444.namd"]
    means: list[float] = []
    for contender in heavy:
        values = [
            penalty
            for row, penalty in zip(
                table.row_names, table.column("raw_penalty")
            )
            if row.endswith(f"vs {contender}")
        ]
        if values:
            means.append(sum(values) / len(values))
    return max(means) - min(means) if means else 0.0
