"""Alternative contenders (§6.1).

The paper: "We have performed complete runs using other benchmarks such
as libquantum and milc and produced very similar results.  Note that
adversaries that make light usage of the L3 cache present more trivial
scenarios."  This experiment verifies both halves of that claim on a
representative victim panel: the heavy contenders (lbm, libquantum,
milc) must produce the same qualitative picture — substantial raw
penalty on sensitive victims, CAER removing most of it — while a light
contender (namd) must produce almost no interference for CAER to
manage.
"""

from __future__ import annotations

from ..caer.metrics import utilization_gained
from ..caer.runtime import CaerConfig, caer_factory
from ..sim import run_colocated, run_solo
from ..workloads import benchmark
from .campaign import CampaignSettings
from .reporting import FigureTable

#: The paper's heavy contenders, plus one light adversary as control.
CONTENDERS = ("470.lbm", "462.libquantum", "433.milc", "444.namd")

#: Victims spanning the sensitivity range.
VICTIM_PANEL = ("429.mcf", "483.xalancbmk", "473.astar", "444.namd")


def contender_study(
    settings: CampaignSettings | None = None,
    contenders: tuple[str, ...] = CONTENDERS,
    victims: tuple[str, ...] = VICTIM_PANEL,
    caer: CaerConfig | None = None,
) -> FigureTable:
    """Raw and CAER-managed penalty for every (victim, contender) pair.

    Rows are ``victim vs contender``; the CAER configuration defaults
    to rule-based (the paper's best performer).
    """
    settings = settings or CampaignSettings.from_env()
    caer = caer or CaerConfig.rule_based()
    machine = settings.machine()
    l3 = machine.l3.capacity_lines

    solo_periods: dict[str, int] = {}
    for victim in victims:
        result = run_solo(
            benchmark(victim, l3, length=settings.length),
            machine,
            seed=settings.seed,
        )
        solo_periods[victim] = (
            result.latency_sensitive().completion_periods
        )

    rows: list[str] = []
    raw_penalties: list[float] = []
    caer_penalties: list[float] = []
    caer_utils: list[float] = []
    for contender in contenders:
        for victim in victims:
            if victim == contender:
                continue
            rows.append(f"{victim} vs {contender}")
            victim_spec = benchmark(victim, l3, length=settings.length)
            contender_spec = benchmark(
                contender, l3, length=settings.length
            )
            raw = run_colocated(
                victim_spec, contender_spec, machine, seed=settings.seed
            )
            managed = run_colocated(
                victim_spec,
                contender_spec,
                machine,
                caer_factory=caer_factory(caer),
                seed=settings.seed,
            )
            base = solo_periods[victim]
            raw_penalties.append(
                raw.latency_sensitive().completion_periods / base - 1.0
            )
            caer_penalties.append(
                managed.latency_sensitive().completion_periods / base
                - 1.0
            )
            caer_utils.append(utilization_gained(managed))

    table = FigureTable(
        title="Alternative contenders (§6.1): penalty by pair",
        row_names=rows,
    )
    table.add_column("raw_penalty", raw_penalties)
    table.add_column("caer_penalty", caer_penalties)
    table.add_column("caer_util", caer_utils)
    table.notes.append(
        "paper: heavy contenders (lbm/libquantum/milc) give 'very "
        "similar results'; light adversaries are 'more trivial'"
    )
    return table


def heavy_contender_agreement(table: FigureTable) -> float:
    """Max spread of mean raw penalty across the heavy contenders.

    Small spread = the §6.1 "very similar results" claim holds.  Rows
    involving the light control contender are excluded.
    """
    heavy = [c for c in CONTENDERS if c != "444.namd"]
    means: list[float] = []
    for contender in heavy:
        values = [
            penalty
            for row, penalty in zip(
                table.row_names, table.column("raw_penalty")
            )
            if row.endswith(f"vs {contender}")
        ]
        if values:
            means.append(sum(values) / len(values))
    return max(means) - min(means) if means else 0.0
