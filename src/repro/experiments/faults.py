"""Detection robustness under PMU signal faults.

The paper's detectors assume a clean 1 ms Perfmon2 sampling loop (§4);
real PMU paths drop samples, jitter their periods, and mis-count.  This
driver sweeps a :class:`~repro.faults.FaultPlan` intensity over the
CAER configurations and reports how detection accuracy, the victim's
penalty, and batch utilization degrade as the signal path decays.

Accuracy is scored the §6.4 way (:func:`~repro.caer.analysis.
score_detection_events`) but with the oracle fed *ground truth*: the
heuristic's verdicts come from the traced, fault-perturbed
:class:`~repro.obs.DetectionEvent` stream, while the profile oracle
re-reads the victim's physically-true per-period miss series (the
engines always record truth; only the probing layer is faulted).  At
intensity 0 the two views coincide and the sweep's first row is the
clean-signal baseline.
"""

from __future__ import annotations

from ..caer.analysis import score_detection_events
from ..config import default_usage_threshold
from ..errors import ExperimentError
from ..faults import FaultPlan
from ..obs import RingBufferSink, Tracer
from ..runspec import RunSpec, execute_run
from .campaign import CampaignSettings
from .executor import fan_out, run_specs
from .reporting import FigureTable

#: Fault intensities swept by default (0 = clean-signal baseline).
DEFAULT_INTENSITIES = (0.0, 0.25, 0.5, 1.0)

#: CAER configurations whose detectors the sweep stresses ("raw" has
#: no detector, so there is nothing to score).
SWEEP_CONFIGS = ("shutter", "rule", "random")


def _sweep_run(task: tuple[RunSpec, float, float]) -> dict:
    """Worker: execute one faulted run, traced, and score detection.

    Module-level and driven only by its picklable argument, as the
    process pool requires; returns plain floats so results pickle
    cheaply.  The heuristic's verdicts are read from the in-memory
    :class:`DetectionEvent` trace; each event's *observation* fields
    are then replaced with the true miss series (same window size and
    rolling mean the communication table uses) before the oracle
    scores them — so the score measures the detector against physical
    reality, not against its own corrupted inputs.
    """
    spec, baseline_misses, noise_floor = task
    ring = RingBufferSink()
    tracer = Tracer([ring])
    try:
        outcome = execute_run(spec, tracer=tracer)
    finally:
        tracer.close()
    misses = outcome.miss_series
    events: list[dict] = []
    for event in ring.by_kind("detection"):
        data = event.to_dict()
        if misses:
            # The verdict speaks about *this* period, so the oracle is
            # fed this period's true misses — a windowed mean would
            # dilute the probe period's truth with the throttled
            # periods around it, where the response already removed
            # the contention the detector is being asked about.
            period = min(data["period"], len(misses) - 1)
            data["neighbor_misses"] = float(misses[period])
            data["neighbor_mean"] = float(misses[period])
        events.append(data)
    score = score_detection_events(
        events, baseline_misses, noise_floor=noise_floor
    )
    return {
        "accuracy": score.report.accuracy,
        "completion_periods": float(outcome.completion_periods),
        "utilization_gained": outcome.utilization_gained,
    }


def fault_sweep(
    settings: CampaignSettings | None = None,
    victim: str = "429.mcf",
    intensities: tuple[float, ...] = DEFAULT_INTENSITIES,
    configs: tuple[str, ...] = SWEEP_CONFIGS,
    jobs: int | None = None,
    fault_seed: int = 0,
) -> FigureTable:
    """Detection accuracy / penalty / utilization vs. fault intensity.

    Rows are fault intensities; per CAER configuration the table
    carries ``<config>_acc`` (oracle-scored detection accuracy),
    ``<config>_pen`` (the victim's penalty vs. solo), and
    ``<config>_util`` (batch utilization gained).  All runs — one solo
    baseline plus ``len(intensities) × len(configs)`` faulted runs —
    fan across worker processes.
    """
    settings = settings or CampaignSettings.from_env()
    if not intensities:
        raise ExperimentError("fault sweep needs at least one intensity")
    for config in configs:
        if config not in SWEEP_CONFIGS:
            raise ExperimentError(
                f"fault sweep config must be one of {SWEEP_CONFIGS}, "
                f"got {config!r}"
            )
    noise_floor = default_usage_threshold(settings.machine())

    solo = run_specs([settings.run_spec(victim, "solo")], jobs=1)[0]
    if solo.completion_periods <= 0:
        raise ExperimentError(f"solo run of {victim!r} never completed")
    baseline_misses = solo.ls_total_llc_misses / solo.completion_periods

    tasks: list[tuple[RunSpec, float, float]] = []
    labels: dict[str, str] = {}
    for intensity in intensities:
        plan = FaultPlan.scaled(intensity, seed=fault_seed)
        for config in configs:
            spec = settings.run_spec(victim, config).with_faults(plan)
            labels[spec.digest] = f"({victim}, {config} @ i={intensity:g})"
            tasks.append((spec, baseline_misses, noise_floor))
    results = fan_out(
        _sweep_run,
        tasks,
        jobs=jobs,
        describe=lambda task: labels.get(
            task[0].digest, task[0].describe()
        ),
    )

    table = FigureTable(
        title=f"Detection robustness vs. fault intensity ({victim})",
        row_names=[f"i={intensity:g}" for intensity in intensities],
    )
    for offset, config in enumerate(configs):
        rows = [
            results[index * len(configs) + offset]
            for index in range(len(intensities))
        ]
        table.add_column(f"{config}_acc", [r["accuracy"] for r in rows])
        table.add_column(
            f"{config}_pen",
            [
                r["completion_periods"] / solo.completion_periods - 1.0
                for r in rows
            ],
        )
        table.add_column(
            f"{config}_util", [r["utilization_gained"] for r in rows]
        )
    table.notes.append(
        f"accuracy scored against the profile oracle reading the true "
        f"miss series (baseline {baseline_misses:.0f} misses/period); "
        f"i=0 is the clean-signal baseline"
    )
    table.notes.append(
        "fault plan per intensity: " + FaultPlan.scaled(
            intensities[-1], seed=fault_seed
        ).describe()
    )
    table.notes.append(
        "shutter (Algorithm 1) is the headline degradation curve; the "
        "random detector never reads the signal and is the flat control"
    )
    return table
