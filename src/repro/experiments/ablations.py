"""Ablations over CAER's tuning space.

The paper explicitly reserves "further investigation of the heuristic
tuning space for future work" (§6.2) while naming the knobs: the
burst-shutter geometry and impact threshold (the QoS "knob"), the
rule-based usage threshold, the response lengths, and the adaptive
red-light/green-light variant.  These sweeps explore that space on one
contention-sensitive victim (mcf) and one insensitive victim (namd),
reporting the penalty/utilization trade-off each setting buys.
"""

from __future__ import annotations

from dataclasses import replace

from ..caer.runtime import CaerConfig
from ..config import MachineConfig, default_usage_threshold
from ..errors import ExperimentError
from ..runspec import (
    BATCH_BENCHMARK,
    ContenderSpec,
    RunSpec,
    execute_run,
)
from ..workloads import benchmark
from .campaign import CampaignSettings
from .executor import run_specs
from .reporting import FigureTable

#: The victims every ablation is evaluated on.
SENSITIVE_VICTIM = "429.mcf"
INSENSITIVE_VICTIM = "444.namd"


def _ablation_label(victim: str, config: CaerConfig | None) -> str:
    tag = f"{config.detector}/{config.response}" if config else "raw"
    return f"({victim}, {tag})"


class AblationRunner:
    """Runs one CAER configuration against the two reference victims.

    Every evaluation is expressed as a declarative
    :class:`~repro.runspec.RunSpec` built from the runner's (possibly
    sweep-modified) ``machine``, and executed through the settings'
    backend — serial :meth:`evaluate` and fanned-out
    :meth:`evaluate_many` therefore produce bit-identical numbers.
    """

    def __init__(
        self,
        settings: CampaignSettings | None = None,
        jobs: int | None = None,
    ):
        self.settings = settings or CampaignSettings.from_env()
        self.machine: MachineConfig = self.settings.machine()
        self._solo_cache: dict[str, int] = {}
        #: default worker count for :meth:`evaluate_many`
        self.jobs = jobs

    def _spec(self, name: str):
        return benchmark(
            name,
            self.machine.l3.capacity_lines,
            length=self.settings.length,
        )

    def solo_spec(self, victim: str) -> RunSpec:
        """The spec of the victim's solo baseline run."""
        return RunSpec(
            victim=victim,
            machine=self.machine,
            seed=self.settings.seed,
            length=self.settings.length,
            backend=self.settings.backend,
        )

    def colocated_spec(
        self, victim: str, config: CaerConfig | None
    ) -> RunSpec:
        """The spec of one victim-vs-lbm run under ``config``."""
        return RunSpec(
            victim=victim,
            contenders=(ContenderSpec(BATCH_BENCHMARK),),
            machine=self.machine,
            caer=config,
            seed=self.settings.seed,
            length=self.settings.length,
            backend=self.settings.backend,
        )

    def _solo_periods(self, victim: str) -> int:
        if victim not in self._solo_cache:
            outcome = execute_run(
                self.solo_spec(victim), keep_series=False
            )
            self._solo_cache[victim] = outcome.completion_periods
        return self._solo_cache[victim]

    def evaluate(
        self, victim: str, config: CaerConfig | None
    ) -> tuple[float, float]:
        """(penalty, utilization gained) of one configuration."""
        outcome = execute_run(
            self.colocated_spec(victim, config), keep_series=False
        )
        penalty = (
            outcome.completion_periods / self._solo_periods(victim) - 1.0
        )
        return penalty, outcome.utilization_gained

    def evaluate_many(
        self,
        pairs: list[tuple[str, CaerConfig | None]],
        jobs: int | None = None,
    ) -> list[tuple[float, float]]:
        """(penalty, utilization) per (victim, config), fanned out.

        The solo baselines are produced (and memoised) up front in this
        process; the independent co-located specs then fan across
        workers, results in ``pairs`` order.
        """
        if jobs is None:
            jobs = self.jobs
        specs: list[RunSpec] = []
        labels: dict[str, str] = {}
        baselines: list[int] = []
        for victim, config in pairs:
            spec = self.colocated_spec(victim, config)
            labels[spec.digest] = _ablation_label(victim, config)
            baselines.append(self._solo_periods(victim))
            specs.append(spec)
        outcomes = run_specs(
            specs,
            jobs=jobs,
            describe=lambda spec: labels.get(spec.digest, spec.describe()),
        )
        return [
            (
                outcome.completion_periods / baseline - 1.0,
                outcome.utilization_gained,
            )
            for outcome, baseline in zip(outcomes, baselines)
        ]


def _sweep(
    runner: AblationRunner,
    title: str,
    configs: list[tuple[str, CaerConfig]],
) -> FigureTable:
    table = FigureTable(
        title=title, row_names=[label for label, _ in configs]
    )
    pairs: list[tuple[str, CaerConfig | None]] = []
    for _label, config in configs:
        pairs.append((SENSITIVE_VICTIM, config))
        pairs.append((INSENSITIVE_VICTIM, config))
    results = iter(runner.evaluate_many(pairs))
    columns: dict[str, list[float]] = {
        "mcf_penalty": [],
        "mcf_util": [],
        "namd_penalty": [],
        "namd_util": [],
    }
    for _label, _config in configs:
        p, u = next(results)
        columns["mcf_penalty"].append(p)
        columns["mcf_util"].append(u)
        p, u = next(results)
        columns["namd_penalty"].append(p)
        columns["namd_util"].append(u)
    for name, values in columns.items():
        table.add_column(name, values)
    return table


def ablate_impact_factor(
    runner: AblationRunner,
    factors: tuple[float, ...] = (0.01, 0.05, 0.15, 0.40),
) -> FigureTable:
    """§6.2's QoS knob: how much burst impact triggers c-positive."""
    configs = [
        (f"impact={f}", CaerConfig.shutter(impact_factor=f))
        for f in factors
    ]
    return _sweep(runner, "Ablation: shutter impact factor", configs)


def ablate_shutter_geometry(
    runner: AblationRunner,
    geometries: tuple[tuple[int, int], ...] = (
        (2, 4), (5, 10), (8, 16), (12, 24)
    ),
) -> FigureTable:
    """Shutter/burst lengths: measurement quality vs. shutter cost."""
    configs = [
        (
            f"switch={s},end={e}",
            CaerConfig.shutter(switch_point=s, end_point=e),
        )
        for s, e in geometries
    ]
    return _sweep(runner, "Ablation: shutter geometry", configs)


def ablate_usage_threshold(
    runner: AblationRunner,
    multipliers: tuple[float, ...] = (0.25, 1.0, 4.0, 16.0),
) -> FigureTable:
    """Rule-based 'heavy usage' threshold, as multiples of the paper's."""
    base = default_usage_threshold(runner.machine)
    configs = [
        (
            f"thresh={m}x",
            CaerConfig.rule_based(usage_thresh=base * m),
        )
        for m in multipliers
    ]
    return _sweep(runner, "Ablation: rule-based usage threshold", configs)


def ablate_response_length(
    runner: AblationRunner,
    lengths: tuple[int, ...] = (1, 5, 10, 20, 40),
) -> FigureTable:
    """Red-light/green-light hold length."""
    configs = [
        (f"length={n}", CaerConfig.shutter(response_length=n))
        for n in lengths
    ]
    return _sweep(runner, "Ablation: red-light/green-light length", configs)


def ablate_adaptive_response(runner: AblationRunner) -> FigureTable:
    """§5's adaptive red-light/green-light vs. the fixed variant."""
    configs = [
        ("fixed", CaerConfig.shutter(adaptive=False)),
        ("adaptive", CaerConfig.shutter(adaptive=True)),
    ]
    return _sweep(runner, "Ablation: fixed vs. adaptive response", configs)


def ablate_window_size(
    runner: AblationRunner,
    sizes: tuple[int, ...] = (5, 10, 20, 40),
) -> FigureTable:
    """Communication-table window size (rule-based averaging horizon)."""
    configs = [
        (f"window={n}", CaerConfig.rule_based(window_size=n))
        for n in sizes
    ]
    return _sweep(runner, "Ablation: sample-window size", configs)


def ablate_response_mechanism(runner: AblationRunner) -> FigureTable:
    """Pause-based throttling vs. §7's DVFS-style frequency scaling.

    The paper cites per-core DVFS (Herdrich et al.) as a promising
    alternative to stopping the batch outright; this sweep compares the
    red-light/green-light pause against frequency scaling at several
    scales, using the shutter detector throughout.
    """
    configs: list[tuple[str, CaerConfig]] = [
        ("pause (rlgl)", CaerConfig.shutter()),
    ]
    for scale in (0.125, 0.25, 0.5):
        configs.append(
            (f"dvfs x{scale}", CaerConfig.dvfs(dvfs_scale=scale))
        )
    for quota in (0.125, 0.25):
        configs.append(
            (
                f"partition {quota}",
                CaerConfig.partition(partition_quota=quota),
            )
        )
    return _sweep(runner, "Ablation: response mechanism", configs)


def ablate_shutter_mode(runner: AblationRunner) -> FigureTable:
    """Paper-literal one-sided spike test vs. the two-sided default.

    Documents the substrate difference discussed in DESIGN.md: on this
    simulator a burst usually *lowers* a memory-bound neighbour's
    misses-per-period, so the one-sided test under-detects.
    """
    configs = [
        ("two-sided", CaerConfig.shutter(shutter_mode="two-sided")),
        ("spike-only", CaerConfig.shutter(shutter_mode="spike")),
    ]
    return _sweep(runner, "Ablation: shutter comparison mode", configs)


def ablate_probe_period(
    runner: AblationRunner,
    period_cycles: tuple[int, ...] = (10_000, 40_000, 160_000),
) -> FigureTable:
    """The probe quantum: the paper's 1 ms choice, scaled up and down.

    Coarser periods lag phase changes and make every response decision
    stickier; finer periods react faster but sample noisier counts.
    Thresholds convert automatically with the period length, so only
    the *temporal resolution* varies.  (This sweep rebuilds the machine
    per setting, so it bypasses the runner's config-only path.)
    """
    table = FigureTable(
        title="Ablation: probe period length",
        row_names=[f"{p} cycles" for p in period_cycles],
    )
    columns: dict[str, list[float]] = {
        "mcf_penalty": [],
        "mcf_util": [],
        "namd_penalty": [],
        "namd_util": [],
    }
    base = runner.settings
    for period in period_cycles:
        settings = CampaignSettings(
            length=base.length,
            seed=base.seed,
            cache_scale=base.cache_scale,
            period_cycles=period,
        )
        sub_runner = AblationRunner(settings, jobs=runner.jobs)
        config = CaerConfig.rule_based()
        p, u = sub_runner.evaluate(SENSITIVE_VICTIM, config)
        columns["mcf_penalty"].append(p)
        columns["mcf_util"].append(u)
        p, u = sub_runner.evaluate(INSENSITIVE_VICTIM, config)
        columns["namd_penalty"].append(p)
        columns["namd_util"].append(u)
    for name, values in columns.items():
        table.add_column(name, values)
    return table


def ablate_probe_overhead(
    runner: AblationRunner,
    overheads: tuple[float, ...] = (0.0, 20.0, 400.0, 4_000.0),
) -> FigureTable:
    """The cost of the monitoring itself (§3.2's low-overhead claim).

    CAER's viability rests on periodic PMU probing being essentially
    free; this sweep charges increasing per-probe costs to every
    monitored core and reports the slowdown they induce on a solo
    latency-sensitive run (the honest measure of monitoring overhead:
    4000 cycles is 10% of the default period).
    """
    from ..arch.chip import MulticoreChip
    from ..sim.engine import SimulationEngine
    from ..sim.process import SimProcess

    def solo_periods(victim: str, overhead: float) -> int:
        chip = MulticoreChip(runner.machine, seed=runner.settings.seed)
        proc = SimProcess(
            runner._spec(victim), 0, seed=runner.settings.seed
        )
        engine = SimulationEngine(
            chip, [proc], probe_overhead_cycles=overhead
        )
        return engine.run().latency_sensitive().completion_periods

    table = FigureTable(
        title="Ablation: PMU probe overhead",
        row_names=[f"{o:g} cycles/probe" for o in overheads],
    )
    columns: dict[str, list[float]] = {"mcf_penalty": [],
                                       "namd_penalty": []}
    baselines = {
        victim: solo_periods(victim, 0.0)
        for victim in (SENSITIVE_VICTIM, INSENSITIVE_VICTIM)
    }
    for overhead in overheads:
        columns["mcf_penalty"].append(
            solo_periods(SENSITIVE_VICTIM, overhead)
            / baselines[SENSITIVE_VICTIM]
            - 1.0
        )
        columns["namd_penalty"].append(
            solo_periods(INSENSITIVE_VICTIM, overhead)
            / baselines[INSENSITIVE_VICTIM]
            - 1.0
        )
    for name, values in columns.items():
        table.add_column(name, values)
    return table


def ablate_prefetch(
    runner: AblationRunner,
    degrees: tuple[int, ...] = (0, 1, 2, 4),
) -> FigureTable:
    """Hardware next-line prefetching (a model extension, off by default).

    Prefetching hides streaming latency — speeding the lbm contender up
    and changing how much pressure it puts on the victim — while its
    extra traffic loads the shared memory channel.  This sweep rebuilds
    the machine per setting.
    """
    from dataclasses import replace as dc_replace

    table = FigureTable(
        title="Ablation: next-line prefetch degree",
        row_names=[f"degree={d}" for d in degrees],
    )
    columns: dict[str, list[float]] = {
        "mcf_penalty": [],
        "mcf_util": [],
        "namd_penalty": [],
        "namd_util": [],
    }
    for degree in degrees:
        sub_runner = AblationRunner(runner.settings, jobs=runner.jobs)
        sub_runner.machine = dc_replace(
            runner.machine, prefetch_degree=degree
        )
        config = CaerConfig.rule_based()
        p, u = sub_runner.evaluate(SENSITIVE_VICTIM, config)
        columns["mcf_penalty"].append(p)
        columns["mcf_util"].append(u)
        p, u = sub_runner.evaluate(INSENSITIVE_VICTIM, config)
        columns["namd_penalty"].append(p)
        columns["namd_util"].append(u)
    for name, values in columns.items():
        table.add_column(name, values)
    return table


def ablate_writebacks(runner: AblationRunner) -> FigureTable:
    """Dirty-line writeback traffic (a model extension, off by default).

    With writebacks modelled, store-marked lines evicted from the L3
    travel back to memory and consume channel bandwidth — raising the
    pressure both applications feel.  This sweep rebuilds the machine
    per setting.
    """
    from dataclasses import replace as dc_replace

    table = FigureTable(
        title="Ablation: writeback modelling",
        row_names=["off", "on"],
    )
    columns: dict[str, list[float]] = {
        "mcf_penalty": [],
        "mcf_util": [],
        "namd_penalty": [],
        "namd_util": [],
    }
    for enabled in (False, True):
        sub_runner = AblationRunner(runner.settings, jobs=runner.jobs)
        sub_runner.machine = dc_replace(
            runner.machine, model_writebacks=enabled
        )
        config = CaerConfig.rule_based()
        p, u = sub_runner.evaluate(SENSITIVE_VICTIM, config)
        columns["mcf_penalty"].append(p)
        columns["mcf_util"].append(u)
        p, u = sub_runner.evaluate(INSENSITIVE_VICTIM, config)
        columns["namd_penalty"].append(p)
        columns["namd_util"].append(u)
    for name, values in columns.items():
        table.add_column(name, values)
    return table


def ablate_detector(runner: AblationRunner) -> FigureTable:
    """All detectors head-to-head, including the offline-profile oracle.

    The oracle knows each victim's solo miss baseline (a profiling run
    the online heuristics do not get); the gap between it and the
    heuristics is the price of detecting *online*.
    """
    configs: list[tuple[str, CaerConfig]] = [
        ("shutter", CaerConfig.shutter()),
        ("rule-based", CaerConfig.rule_based()),
        ("random", CaerConfig.random_baseline()),
    ]
    table = FigureTable(
        title="Ablation: detector comparison (incl. offline oracle)",
        row_names=[label for label, _ in configs] + ["profile-oracle"],
    )
    columns: dict[str, list[float]] = {
        "mcf_penalty": [],
        "mcf_util": [],
        "namd_penalty": [],
        "namd_util": [],
    }
    for _label, config in configs:
        p, u = runner.evaluate(SENSITIVE_VICTIM, config)
        columns["mcf_penalty"].append(p)
        columns["mcf_util"].append(u)
        p, u = runner.evaluate(INSENSITIVE_VICTIM, config)
        columns["namd_penalty"].append(p)
        columns["namd_util"].append(u)
    # The oracle needs per-victim solo baselines.
    for victim, prefix in (
        (SENSITIVE_VICTIM, "mcf"),
        (INSENSITIVE_VICTIM, "namd"),
    ):
        solo = execute_run(runner.solo_spec(victim), keep_series=False)
        baseline = solo.ls_total_llc_misses / solo.completion_periods
        config = CaerConfig.profile_oracle(baseline_misses=baseline)
        p, u = runner.evaluate(victim, config)
        columns[f"{prefix}_penalty"].append(p)
        columns[f"{prefix}_util"].append(u)
    for name, values in columns.items():
        table.add_column(name, values)
    return table


#: Registry used by the CLI and the ablation bench.
ABLATIONS = {
    "impact-factor": ablate_impact_factor,
    "shutter-geometry": ablate_shutter_geometry,
    "usage-threshold": ablate_usage_threshold,
    "response-length": ablate_response_length,
    "adaptive-response": ablate_adaptive_response,
    "window-size": ablate_window_size,
    "shutter-mode": ablate_shutter_mode,
    "response-mechanism": ablate_response_mechanism,
    "probe-period": ablate_probe_period,
    "probe-overhead": ablate_probe_overhead,
    "prefetch": ablate_prefetch,
    "writebacks": ablate_writebacks,
    "detector": ablate_detector,
}


def run_ablation(
    name: str,
    settings: CampaignSettings | None = None,
    jobs: int | None = None,
) -> FigureTable:
    """Run one named ablation and return its table."""
    try:
        fn = ABLATIONS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown ablation {name!r} "
            f"(known: {', '.join(sorted(ABLATIONS))})"
        ) from None
    return fn(AblationRunner(settings, jobs=jobs))
