"""The paper's headline numbers (§1, §6.2).

"Allowing co-location with CAER, as opposed to disallowing co-location,
we are able to increase the utilization of the multicore CPU by 58% on
average.  Meanwhile CAER brings the overhead due to allowing co-location
from 17% down to just 4% on average."  (4% is rule-based; burst-shutter
achieves 6% with ~60% utilization gained.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads import benchmark_names
from . import paperdata
from .campaign import Campaign


@dataclass(frozen=True)
class HeadlineNumbers:
    """Measured-vs-paper summary of the whole evaluation."""

    raw_penalty: float
    shutter_penalty: float
    rule_penalty: float
    shutter_utilization: float
    rule_utilization: float

    paper_raw_penalty: float = paperdata.PAPER_MEAN_RAW_PENALTY
    paper_shutter_penalty: float = paperdata.PAPER_MEAN_SHUTTER_PENALTY
    paper_rule_penalty: float = paperdata.PAPER_MEAN_RULE_PENALTY
    paper_shutter_utilization: float = (
        paperdata.PAPER_MEAN_SHUTTER_UTILIZATION
    )
    paper_rule_utilization: float = paperdata.PAPER_MEAN_RULE_UTILIZATION

    def render(self) -> str:
        """Human-readable measured-vs-paper block."""
        lines = [
            "== Headline numbers (mean over the SPEC2006 C/C++ suite) ==",
            f"{'metric':<34} {'measured':>9} {'paper':>7}",
        ]
        rows = [
            ("raw co-location penalty", self.raw_penalty,
             self.paper_raw_penalty),
            ("CAER shutter penalty", self.shutter_penalty,
             self.paper_shutter_penalty),
            ("CAER rule-based penalty", self.rule_penalty,
             self.paper_rule_penalty),
            ("CAER shutter utilization gained", self.shutter_utilization,
             self.paper_shutter_utilization),
            ("CAER rule-based utilization gained", self.rule_utilization,
             self.paper_rule_utilization),
        ]
        for label, measured, paper in rows:
            lines.append(f"{label:<34} {measured:>9.3f} {paper:>7.2f}")
        return "\n".join(lines) + "\n"


def headline_numbers(campaign: Campaign) -> HeadlineNumbers:
    """Compute the suite-mean penalties and utilization gains."""
    rows = list(benchmark_names())
    campaign.prefetch(rows, ("solo", "raw", "shutter", "rule"))
    n = len(rows)

    def mean_penalty(config: str) -> float:
        return sum(campaign.penalty(b, config) for b in rows) / n

    def mean_utilization(config: str) -> float:
        return (
            sum(
                campaign.colocated(b, config).utilization_gained
                for b in rows
            )
            / n
        )

    return HeadlineNumbers(
        raw_penalty=mean_penalty("raw"),
        shutter_penalty=mean_penalty("shutter"),
        rule_penalty=mean_penalty("rule"),
        shutter_utilization=mean_utilization("shutter"),
        rule_utilization=mean_utilization("rule"),
    )
