"""The detector shootout: every registered heuristic vs. the oracle.

The registry (:mod:`repro.caer.registry`) makes detectors pluggable;
this driver makes them *comparable*.  It sweeps every registered
detection heuristic — the paper's pair, the baselines, and the zoo —
through the same §6.4-style scoring harness the fault sweep uses: each
detector runs co-located and traced, its verdict stream is re-grounded
on the victim's physically-true per-period miss series, and the
profile oracle scores it.  One table then ranks the whole zoo on

* **accuracy** against the oracle on a clean signal,
* **mean accuracy** across the swept fault intensities (robustness),
* the victim's **penalty** vs. solo, and
* batch **utilization gained**,

so "is my new detector any good?" is one command, and the random
baseline (coin-flip verdicts, §6.4) marks the floor everything real
must clear.
"""

from __future__ import annotations

import dataclasses

from ..caer import registry
from ..caer.runtime import CaerConfig
from ..config import default_usage_threshold
from ..errors import ExperimentError
from ..faults import FaultPlan
from ..runspec import RunSpec
from .campaign import CampaignSettings
from .executor import fan_out, run_specs
from .faults import _sweep_run
from .reporting import FigureTable

#: Fault intensities swept by default: the clean signal that headlines
#: the ranking, plus one degraded point for the robustness column.
DEFAULT_INTENSITIES = (0.0, 0.5)


def shootout_config(
    detector: str,
    baseline_misses: float,
    victim: str,
) -> CaerConfig:
    """The CAER setup a detector competes under.

    Burst-Shutter keeps the paper's §6 knobs (signal-relative, no
    absolute threshold) with the opt-in fault filter + debounce armed
    for the robustness sweep; the random baseline keeps its exact §6
    setup (signal-free).  Every threshold-bearing entrant instead gets
    a **victim-informed** ``usage_thresh`` — the solo baseline plus
    the oracle's 25% tolerance — because the paper's absolute 1500
    misses/ms constant was tuned for its machine and does not transfer
    across machine scales: untuned it sits far below the victim's solo
    miss rate here, the rule fires every probe, and the soft lock
    never releases on signal.  The informed threshold is exactly the
    information a deployer extracts from the same solo profiling run
    the oracle's baseline comes from, so no entrant sees data the
    harness doesn't already use.  The proactive detector additionally
    gets the victim name so its fence comes from the analytic model.
    """
    if detector == "shutter":
        # The paper's setup plus the opt-in fault hardening: the
        # shootout's robustness column sweeps corrupted signals, where
        # unfiltered Burst-Shutter dips below the random floor (a
        # ROADMAP-known gap).  The filter is a no-op on the clean
        # signal, so the headline ``acc`` column is unchanged.
        return CaerConfig.shutter(
            detector_params={"fault_filter": True, "debounce": 3}
        )
    if detector == "random":
        return CaerConfig.random_baseline()
    informed_thresh = baseline_misses * 1.25
    if detector == "profile":
        return CaerConfig.profile_oracle(
            baseline_misses, usage_thresh=informed_thresh
        )
    params = {}
    if detector == "proactive-analytic":
        params = {"victim": victim}
    return CaerConfig(
        detector=detector,
        response="soft-lock",
        usage_thresh=informed_thresh,
        detector_params=params,
    )


def detector_shootout(
    settings: CampaignSettings | None = None,
    victim: str = "429.mcf",
    intensities: tuple[float, ...] = DEFAULT_INTENSITIES,
    detectors: tuple[str, ...] | None = None,
    jobs: int | None = None,
    fault_seed: int = 0,
) -> FigureTable:
    """Score every registered detector against the profile oracle.

    Rows are detectors (every registered one by default); columns are
    clean-signal accuracy, mean accuracy across ``intensities``, the
    victim's penalty vs. solo, and batch utilization gained (both on
    the clean signal).  All runs fan across worker processes.
    """
    settings = settings or CampaignSettings.from_env()
    if not intensities:
        raise ExperimentError("shootout needs at least one intensity")
    if 0.0 not in intensities:
        raise ExperimentError(
            "shootout intensities must include 0.0 (the clean-signal "
            "ranking headline)"
        )
    if detectors is None:
        detectors = registry.detector_names()
    known = registry.detector_names()
    for name in detectors:
        if name not in known:
            raise ExperimentError(
                f"unknown detector {name!r} "
                f"(registered detectors: {', '.join(known)})"
            )
    noise_floor = default_usage_threshold(settings.machine())

    solo = run_specs([settings.run_spec(victim, "solo")], jobs=1)[0]
    if solo.completion_periods <= 0:
        raise ExperimentError(f"solo run of {victim!r} never completed")
    baseline_misses = solo.ls_total_llc_misses / solo.completion_periods

    tasks: list[tuple[RunSpec, float, float]] = []
    labels: dict[str, str] = {}
    raw = settings.run_spec(victim, "raw")
    for name in detectors:
        config = shootout_config(name, baseline_misses, victim)
        for intensity in intensities:
            spec = dataclasses.replace(raw, caer=config).with_faults(
                FaultPlan.scaled(intensity, seed=fault_seed)
            )
            labels[spec.digest] = f"({victim}, {name} @ i={intensity:g})"
            tasks.append((spec, baseline_misses, noise_floor))
    results = fan_out(
        _sweep_run,
        tasks,
        jobs=jobs,
        describe=lambda task: labels.get(
            task[0].digest, task[0].describe()
        ),
    )

    clean_index = intensities.index(0.0)
    table = FigureTable(
        title=f"Detector shootout vs. the profile oracle ({victim})",
        row_names=list(detectors),
    )
    per_detector = [
        results[index * len(intensities):(index + 1) * len(intensities)]
        for index in range(len(detectors))
    ]
    table.add_column(
        "acc",
        [rows[clean_index]["accuracy"] for rows in per_detector],
    )
    table.add_column(
        "acc_mean",
        [
            sum(r["accuracy"] for r in rows) / len(rows)
            for rows in per_detector
        ],
    )
    table.add_column(
        "penalty",
        [
            rows[clean_index]["completion_periods"]
            / solo.completion_periods
            - 1.0
            for rows in per_detector
        ],
    )
    table.add_column(
        "util",
        [
            rows[clean_index]["utilization_gained"]
            for rows in per_detector
        ],
    )
    table.notes.append(
        f"accuracy scored against the profile oracle reading the true "
        f"miss series (baseline {baseline_misses:.0f} misses/period); "
        f"acc is the clean signal, acc_mean spans fault intensities "
        f"{', '.join(f'{i:g}' for i in intensities)}"
    )
    table.notes.append(
        "penalty/util are clean-signal; the random row (coin-flip "
        "verdicts, §6.4) is the accuracy floor every real detector "
        "must clear; the profile row is the oracle scoring itself"
    )
    return table
