#!/usr/bin/env python3
"""Quickstart: reproduce the paper's core result on one benchmark pair.

Runs 429.mcf (the paper's most contention-sensitive benchmark) alone,
then co-located with the 470.lbm batch contender — raw, and under each
CAER heuristic — and prints the slowdown / utilization trade-off each
configuration achieves.

Run:  python examples/quickstart.py [length]
"""

from __future__ import annotations

import sys

from repro import (
    CaerConfig,
    MachineConfig,
    benchmark,
    caer_factory,
    run_colocated,
    run_solo,
)
from repro.caer.metrics import slowdown, utilization_gained


def main() -> None:
    length = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    machine = MachineConfig.scaled_nehalem()
    l3 = machine.l3.capacity_lines
    mcf = benchmark("429.mcf", l3, length=length)
    lbm = benchmark("470.lbm", l3, length=length)

    print(f"machine: {machine.name}, L3 = {l3} lines, "
          f"period = {machine.period_cycles} cycles")
    print(f"victim:  {mcf.name}   contender: {lbm.name}\n")

    solo = run_solo(mcf, machine)
    print(f"{'configuration':<28} {'slowdown':>9} {'util gained':>12}")
    print(f"{'alone (no co-location)':<28} {1.0:>9.3f} {0.0:>12.1%}")

    configurations = [
        ("co-location (no runtime)", None),
        ("CAER burst-shutter", CaerConfig.shutter()),
        ("CAER rule-based", CaerConfig.rule_based()),
        ("CAER random baseline", CaerConfig.random_baseline()),
    ]
    for label, config in configurations:
        result = run_colocated(
            mcf, lbm, machine,
            caer_factory=caer_factory(config) if config else None,
        )
        print(
            f"{label:<28} {slowdown(result, solo):>9.3f} "
            f"{utilization_gained(result):>12.1%}"
        )

    print(
        "\nThe paper's story: raw co-location hurts mcf badly; CAER "
        "detects the contention online\nand throttles lbm, trading "
        "batch utilization for latency-sensitive performance."
    )


if __name__ == "__main__":
    main()
