#!/usr/bin/env python3
"""Operating CAER: decision logs, accuracy scoring, and trace export.

The runtime is only trustworthy if you can see what it did.  This
example runs a controlled experiment — the contender is present for a
*known* interval, so ground truth exists — then:

* summarises the decision log (Figure 5 state occupancy, verdict mix,
  throttle fraction);
* scores every verdict against the ground-truth interval
  (precision/recall, the formal version of §6.4's false-positive/
  false-negative discussion);
* exports the per-period records and decisions as CSV for external
  tooling.

Run:  python examples/online_monitoring.py
"""

from __future__ import annotations

from repro import CaerConfig, MachineConfig
from repro.arch.chip import MulticoreChip
from repro.caer.analysis import score_verdicts, summarise_decisions
from repro.caer.runtime import CaerRuntime
from repro.sim.engine import SimulationEngine
from repro.sim.process import AppClass, SimProcess
from repro.sim.trace import decisions_to_csv, periods_to_csv
from repro.workloads import synthetic

MACHINE = MachineConfig.scaled_nehalem()
L3 = MACHINE.l3.capacity_lines

#: The contender launches late and finishes early, giving a clean
#: ground-truth contention interval in the middle of the run.
CONTENDER_LAUNCH = 40


def run_once(config: CaerConfig):
    """One controlled run; returns (result, ground-truth interval)."""
    victim = synthetic.zipf_worker(
        lines=int(0.8 * L3), alpha=0.5, instructions=1_200_000.0
    )
    contender = synthetic.streamer(lines=4 * L3, instructions=500_000.0)
    chip = MulticoreChip(MACHINE)
    ls = SimProcess(victim, 0, seed=1)
    batch = SimProcess(
        contender, 1, AppClass.BATCH, name="contender",
        launch_period=CONTENDER_LAUNCH, seed=2,
    )
    engine = SimulationEngine(chip, [ls, batch])
    engine.period_hooks.append(CaerRuntime(engine, config))
    result = engine.run()
    end = (
        result.process("contender").first_completion_period
        or result.total_periods
    )
    return result, range(CONTENDER_LAUNCH + 1, end + 1)


def main() -> None:
    # The burst-shutter heuristic issues one explicit verdict per
    # detection cycle, giving the cleanest verdict stream to score.
    # Its geometry must match the L3's turnover time-constant: with
    # ~530 contender insertions/period over 512 16-way sets, evicting
    # (or recovering) the victim's share of the cache takes ~15
    # periods, so the paper's 5+5 cycle samples mid-transient.
    print("== Shutter geometry vs. detection quality ==")
    print(f"{'geometry':<22} {'precision':>9} {'recall':>7} "
          f"{'accuracy':>9}")
    for switch, end_point in ((5, 10), (10, 20), (14, 28)):
        config = CaerConfig.shutter(
            switch_point=switch, end_point=end_point
        )
        result, contended = run_once(config)
        report = score_verdicts(result, contended)
        print(
            f"switch={switch:<3} end={end_point:<10} "
            f"{report.precision:>9.2f} {report.recall:>7.2f} "
            f"{report.accuracy:>9.2f}"
        )

    result, contended = run_once(
        CaerConfig.shutter(switch_point=14, end_point=28)
    )
    print("\n== Decision-log summary (switch=14, end=28) ==")
    print(summarise_decisions(result).render())

    print("\n== Exports ==")
    periods_csv = periods_to_csv(result)
    decisions_csv = decisions_to_csv(result)
    print(f"per-period CSV: {len(periods_csv.splitlines()) - 1} rows, "
          f"columns: {periods_csv.splitlines()[0]}")
    print(f"decision CSV:   {len(decisions_csv.splitlines()) - 1} rows, "
          f"columns: {decisions_csv.splitlines()[0]}")
    print("\nfirst decision rows:")
    for line in decisions_csv.splitlines()[:4]:
        print(" ", line)


if __name__ == "__main__":
    main()
