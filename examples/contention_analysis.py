#!/usr/bin/env python3
"""Offline contention analysis with the analytical model.

CAER detects contention *online* from performance counters; the related
work the paper cites (Chandra et al., reuse-distance theory) predicts
it *offline* from memory-behaviour profiles.  This example runs that
other road: it profiles a few SPEC models' reuse-distance curves,
solves the shared-L3 occupancy fixed point against the lbm contender,
predicts each victim's slowdown — and then checks one prediction
against the trace-driven simulator.

Run:  python examples/contention_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import MachineConfig, benchmark, run_colocated, run_solo
from repro.analytic import MissRateCurve, predict_colocation

MACHINE = MachineConfig.scaled_nehalem()
L3 = MACHINE.l3.capacity_lines
VICTIMS = ("429.mcf", "473.astar", "444.namd")


def show_mrc(name: str) -> None:
    spec = benchmark(name, L3)
    phase = max(spec.phases, key=lambda p: p.duration_instructions)
    pattern = phase.pattern.instantiate(np.random.default_rng(0), 0)
    curve = MissRateCurve.from_pattern(pattern, 30_000)
    points = [int(L3 * f) for f in (0.125, 0.25, 0.5, 1.0)]
    rates = "  ".join(
        f"{c / L3:>5.0%}:{curve.miss_rate(c):>6.1%}" for c in points
    )
    print(f"{name:<14} miss rate vs L3 share   {rates}")


def main() -> None:
    print("== Reuse-distance profiles (dominant phase) ==")
    for name in VICTIMS:
        show_mrc(name)

    print("\n== Predicted slowdown next to lbm ==")
    lbm = benchmark("470.lbm", L3)
    for name in VICTIMS:
        prediction = predict_colocation(benchmark(name, L3), lbm, MACHINE)
        print(
            f"{name:<14} slowdown {prediction.slowdown:>6.3f}   "
            f"L3 share kept {prediction.victim_occupancy_fraction:>5.1%}   "
            f"memory queue {prediction.queue_delay:>5.1f} cycles"
        )

    print("\n== Cross-check one prediction against the simulator ==")
    victim = benchmark("429.mcf", L3, length=0.06)
    contender = benchmark("470.lbm", L3, length=0.06)
    solo = run_solo(victim, MACHINE)
    colo = run_colocated(victim, contender, MACHINE)
    simulated = (
        colo.latency_sensitive().completion_periods
        / solo.latency_sensitive().completion_periods
    )
    predicted = predict_colocation(
        benchmark("429.mcf", L3), benchmark("470.lbm", L3), MACHINE
    ).slowdown
    print(f"mcf + lbm: predicted {predicted:.3f}, simulated {simulated:.3f}")


if __name__ == "__main__":
    main()
