#!/usr/bin/env python3
"""Exploring the QoS knob: the burst-shutter impact factor.

§6.2 calls the impact threshold "a 'knob' which intuitively sets the
sensitivity of detection": how much cross-core interference the
latency-sensitive application is willing to withstand before CAER
throttles the batch.  The paper reserves the tuning space for future
work; this example maps it for one sensitive victim (429.mcf) and one
insensitive victim (444.namd), printing the penalty/utilization
frontier each setting buys.

Run:  python examples/heuristic_tuning.py
"""

from __future__ import annotations

from repro import (
    CaerConfig,
    MachineConfig,
    benchmark,
    caer_factory,
    run_colocated,
    run_solo,
)
from repro.caer.metrics import utilization_gained

LENGTH = 0.08
MACHINE = MachineConfig.scaled_nehalem()
L3 = MACHINE.l3.capacity_lines
IMPACT_FACTORS = (0.01, 0.05, 0.10, 0.25, 0.50, 1.00)


def frontier(victim_name: str) -> None:
    victim = benchmark(victim_name, L3, length=LENGTH)
    lbm = benchmark("470.lbm", L3, length=LENGTH)
    solo_periods = (
        run_solo(victim, MACHINE).latency_sensitive().completion_periods
    )
    print(f"\n-- {victim_name} --")
    print(f"{'impact factor':>13} {'penalty':>8} {'batch util':>11}")
    for impact in IMPACT_FACTORS:
        config = CaerConfig.shutter(impact_factor=impact)
        result = run_colocated(
            victim, lbm, MACHINE, caer_factory=caer_factory(config)
        )
        penalty = (
            result.latency_sensitive().completion_periods / solo_periods
            - 1.0
        )
        print(
            f"{impact:>13.2f} {penalty:>8.1%} "
            f"{utilization_gained(result):>11.1%}"
        )


def main() -> None:
    print(
        "Raising the impact factor makes detection less sensitive: "
        "more batch utilization,\nmore interference tolerated.  A "
        "sensitive victim needs a low setting; an insensitive\none "
        "tolerates any setting."
    )
    frontier("429.mcf")
    frontier("444.namd")


if __name__ == "__main__":
    main()
