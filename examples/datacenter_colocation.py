#!/usr/bin/env python3
"""Datacenter co-location: a phased "web search" service plus batch jobs.

The paper's motivation (§1) is the web-service datacenter: user-facing,
latency-sensitive applications must not suffer cross-core interference,
so operators simply refuse to co-locate batch work — wasting ~85% of
their machines.  This example builds that scenario directly:

* a *search-like* latency-sensitive service with bursty phases (heavy
  index-walk bursts between quiet snippet-generation stretches), and
* **two** relaunching batch analytics jobs on neighbouring cores —
  exercising CAER's multi-batch directive path ("all of the batch
  processes must react together", §3.2).

It then compares the three policies an operator could pick: disallow
co-location, allow it blindly, or allow it under CAER.

Run:  python examples/datacenter_colocation.py
"""

from __future__ import annotations

from repro import CaerConfig, MachineConfig
from repro.arch.chip import MulticoreChip
from repro.caer.metrics import utilization_gained
from repro.caer.runtime import CaerRuntime
from repro.sim.engine import SimulationEngine
from repro.sim.process import AppClass, SimProcess
from repro.workloads.base import PhaseSpec, WorkloadSpec
from repro.workloads.patterns import (
    SequentialStreamSpec,
    UniformRandomSpec,
    ZipfSpec,
)

MACHINE = MachineConfig.scaled_nehalem()
L3 = MACHINE.l3.capacity_lines


def search_service() -> WorkloadSpec:
    """A web-search-like service: index-walk bursts, quiet stretches."""
    index_walk = PhaseSpec(
        pattern=UniformRandomSpec(lines=int(0.7 * L3)),
        duration_instructions=30_000.0,
        mem_ratio=0.25,
        base_cpi=0.45,
        overlap=1.4,
    )
    snippets = PhaseSpec(
        pattern=ZipfSpec(lines=int(0.06 * L3), alpha=1.2),
        duration_instructions=60_000.0,
        mem_ratio=0.15,
        base_cpi=0.5,
        overlap=1.6,
    )
    return WorkloadSpec(
        name="web-search",
        phases=(index_walk, snippets),
        total_instructions=900_000.0,
    )


def analytics_job(name: str) -> WorkloadSpec:
    """A log-crunching batch job: streaming over a large dataset."""
    phase = PhaseSpec(
        pattern=SequentialStreamSpec(lines=3 * L3, line_repeats=4),
        duration_instructions=100_000.0,
        mem_ratio=0.35,
        base_cpi=0.4,
        overlap=3.0,
    )
    return WorkloadSpec(
        name=name, phases=(phase,), total_instructions=300_000.0
    )


def run_policy(caer_config: CaerConfig | None,
               batch_count: int) -> tuple[int, float]:
    """Return (search completion periods, batch utilization gained)."""
    chip = MulticoreChip(MACHINE)
    processes = [
        SimProcess(search_service(), 0, launch_period=3, seed=1),
    ]
    for i in range(batch_count):
        processes.append(
            SimProcess(
                analytics_job(f"analytics-{i}"),
                core_id=1 + i,
                app_class=AppClass.BATCH,
                relaunch=True,
                seed=100 + i,
            )
        )
    engine = SimulationEngine(chip, processes)
    if caer_config is not None:
        engine.period_hooks.append(CaerRuntime(engine, caer_config))
    result = engine.run()
    gained = utilization_gained(result) if batch_count else 0.0
    return result.latency_sensitive().completion_periods, gained


def main() -> None:
    alone, _ = run_policy(None, batch_count=0)
    print(f"{'operator policy':<34} {'latency':>8} {'slowdown':>9} "
          f"{'batch util':>11}")
    print(f"{'disallow co-location':<34} {alone:>8} {1.0:>9.3f} "
          f"{0.0:>11.1%}")
    for label, config in [
        ("co-locate blindly (2 batch jobs)", None),
        ("co-locate under CAER rule-based", CaerConfig.rule_based()),
        ("co-locate under CAER shutter", CaerConfig.shutter()),
    ]:
        latency, gained = run_policy(config, batch_count=2)
        print(
            f"{label:<34} {latency:>8} {latency / alone:>9.3f} "
            f"{gained:>11.1%}"
        )
    print(
        "\nCAER lets the operator run batch analytics on the idle "
        "cores while keeping the\nsearch service close to its "
        "isolated latency — the paper's headline trade-off."
    )


if __name__ == "__main__":
    main()
