#!/usr/bin/env python3
"""Capacity planning: screen statistically, verify with the simulator.

An operator question the paper's introduction implies: *which* batch
jobs can safely share a chip with a given latency-sensitive service
under a penalty budget?  Answering by trace simulation for every
candidate pair is slow; this example shows the two-resolution workflow
this library supports:

1. screen every candidate contender against the service on the
   **statistical engine** (closed form, full run lengths, milliseconds
   per pair) — a cheap optimistic filter;
2. gate every pairing the screen did not clear outright through the
   **trace engine** under CAER (per-access fidelity).

The output also shows *why* the gate matters: the closed-form screen
underestimates raw cache contention for heavy pairs (it has no
inclusion victims or set conflicts), but the CAER-managed penalty it
predicts holds up — the runtime, not the estimate, is what makes
co-location safe.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro import CaerConfig, MachineConfig, benchmark, caer_factory
from repro.caer.metrics import slowdown, utilization_gained
from repro.sim import run_colocated, run_solo
from repro.statistical import fast_colocated, fast_solo

MACHINE = MachineConfig.scaled_nehalem()
L3 = MACHINE.l3.capacity_lines

SERVICE = "483.xalancbmk"  # the latency-sensitive tenant
CANDIDATES = (
    "470.lbm",
    "462.libquantum",
    "433.milc",
    "456.hmmer",
    "444.namd",
    "453.povray",
    "401.bzip2",
    "454.calculix",
)
PENALTY_BUDGET = 0.05  # the service may lose at most 5%


def screen() -> list[tuple[str, float, float, float]]:
    """Statistical pass over every candidate (full run length)."""
    service = benchmark(SERVICE, L3, length=1.0)
    solo = fast_solo(service, MACHINE)
    base = solo.latency_sensitive().completion_periods
    rows = []
    for name in CANDIDATES:
        contender = benchmark(name, L3, length=1.0)
        raw = fast_colocated(service, contender, MACHINE)
        managed = fast_colocated(
            service, contender, MACHINE,
            caer_factory=caer_factory(CaerConfig.rule_based()),
        )
        raw_penalty = (
            raw.latency_sensitive().completion_periods / base - 1.0
        )
        managed_penalty = (
            managed.latency_sensitive().completion_periods / base - 1.0
        )
        rows.append(
            (name, raw_penalty, managed_penalty,
             utilization_gained(managed))
        )
    return rows


def verify(name: str, solo_cache: dict) -> tuple[float, float, float]:
    """Trace-engine gate: raw and CAER-managed penalty (reduced length)."""
    service = benchmark(SERVICE, L3, length=0.1)
    contender = benchmark(name, L3, length=0.1)
    if "solo" not in solo_cache:
        solo_cache["solo"] = run_solo(service, MACHINE)
    solo = solo_cache["solo"]
    raw = run_colocated(service, contender, MACHINE)
    managed = run_colocated(
        service, contender, MACHINE,
        caer_factory=caer_factory(CaerConfig.rule_based()),
    )
    return (
        slowdown(raw, solo) - 1.0,
        slowdown(managed, solo) - 1.0,
        utilization_gained(managed),
    )


def main() -> None:
    print(f"service: {SERVICE}   penalty budget: {PENALTY_BUDGET:.0%}\n")
    print("== Statistical screen (full length, seconds) ==")
    print(f"{'candidate':<16} {'raw':>7} {'w/ CAER':>8} {'util':>6} "
          f"{'screen verdict':>18}")
    gate_list = []
    for name, raw, managed, util in screen():
        if raw <= 0.02:
            verdict = "co-locate freely"
        elif managed <= PENALTY_BUDGET:
            verdict = "gate w/ CAER"
            gate_list.append(name)
        else:
            verdict = "keep separate"
        print(f"{name:<16} {raw:>7.1%} {managed:>8.1%} {util:>6.1%} "
              f"{verdict:>18}")

    print("\n== Trace-engine gate (per-access fidelity) ==")
    print(f"{'candidate':<16} {'raw':>7} {'w/ CAER':>8} {'util':>6} "
          f"{'decision':>18}")
    solo_cache: dict = {}
    for name in gate_list:
        raw, managed, util = verify(name, solo_cache)
        decision = (
            "co-locate w/ CAER"
            if managed <= PENALTY_BUDGET + 0.02
            else "keep separate"
        )
        print(f"{name:<16} {raw:>7.1%} {managed:>8.1%} {util:>6.1%} "
              f"{decision:>18}")
    print(
        "\nNote how much larger the trace-engine raw penalties are "
        "than the screen's —\nthe closed-form filter is optimistic "
        "about cache contention, but the CAER-managed\npenalty it "
        "predicts survives per-access simulation: the runtime is what "
        "makes\nthe co-location safe, and the gate confirms it."
    )


if __name__ == "__main__":
    main()
