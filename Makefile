# Convenience targets for the CAER reproduction.

PYTHON ?= python

.PHONY: install test bench simspeed figures report examples clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_simspeed.py --json BENCH_simspeed.json

simspeed:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_simspeed.py

figures:
	$(PYTHON) -m repro.cli all

report:
	$(PYTHON) -m repro.cli report

examples:
	$(PYTHON) examples/quickstart.py 0.05
	$(PYTHON) examples/datacenter_colocation.py
	$(PYTHON) examples/heuristic_tuning.py
	$(PYTHON) examples/contention_analysis.py
	$(PYTHON) examples/online_monitoring.py

clean:
	rm -rf results/figures.txt .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
