"""Figure 10: accuracy vs. random, six least sensitive benchmarks.

The mirror of Figure 9: for insensitive victims the heuristics should
*reclaim* utilization the random baseline throws away (A > 0); the
paper reads any negative value here as false positives.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figure10


def bench_figure10(benchmark, campaign):
    table = benchmark.pedantic(
        figure10, args=(campaign,), rounds=1, iterations=1
    )
    emit(table.render())
    emit(table.render_bars("caer_rule"))

    # Means must be positive for both heuristics (correct negatives).
    for column in ("caer_shutter", "caer_rule"):
        assert table.mean(column) > 0.0

    # Rule-based reclaims the most for insensitive apps (it simply
    # never locks), matching the paper's Figure 10 ordering.
    assert table.mean("caer_rule") >= table.mean("caer_shutter")
    for value in table.column("caer_rule"):
        assert value > 0.0
