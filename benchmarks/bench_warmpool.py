#!/usr/bin/env python
"""Campaign fan-out wall clock: persistent warm pool vs cold spawns.

The cold executor pays a full ``ProcessPoolExecutor`` spawn — fork,
interpreter bring-up, ``repro`` import — for *every* batch it runs.
The persistent pool (:mod:`repro.experiments.workerpool`) pays it once
per campaign, keeps the workers hot between batches, interns specs by
digest so repeats ship as a 16-byte key, and returns outcomes over a
shared-memory ring instead of the executor's pickle queue.

This benchmark times the acceptance scenario from the tier-4 PR: a
64-spec fan-out at ``--jobs 4``, run as a sequence of batches the way
a sweep driver issues them.  The warm pool must finish the campaign at
least :data:`WARM_OVER_COLD_TARGET` times faster than the cold path.

Usage::

    python benchmarks/bench_warmpool.py            # full gate run
    python benchmarks/bench_warmpool.py --smoke    # ordering only

Exits non-zero when the gate fails, so CI can call it directly.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.campaign import CampaignSettings  # noqa: E402
from repro.experiments.executor import run_specs  # noqa: E402
from repro.experiments.workerpool import shutdown_pool  # noqa: E402

#: Required campaign speedup of the persistent pool over per-batch
#: process spawning (the PR acceptance gate).
WARM_OVER_COLD_TARGET = 1.3

#: The acceptance scenario: 64 specs fanned over 4 workers.
DEFAULT_SPECS = 64
DEFAULT_JOBS = 4

#: Batches per campaign — a sweep driver issues specs in waves (one
#: per figure point, ablation step, or retry round), and the cold
#: path re-spawns the pool for every one of them.
DEFAULT_BATCHES = 16

#: Very short simulator runs so the fixed per-batch transport cost —
#: pool bring-up, lazy sim-module imports in fresh workers, spec
#: pickling — dominates what we compare, not the simulation itself.
SETTINGS = CampaignSettings(length=0.002, backend="sim")

BENCHES = ("444.namd", "429.mcf", "450.soplex", "462.libquantum")
CONFIGS = ("solo", "rule")


def make_specs(n: int) -> list:
    """``n`` distinct-but-cheap specs cycling the paper's pairings."""
    specs = []
    i = 0
    while len(specs) < n:
        bench = BENCHES[i % len(BENCHES)]
        config = CONFIGS[(i // len(BENCHES)) % len(CONFIGS)]
        specs.append(SETTINGS.run_spec(bench, config))
        i += 1
    return specs


def run_campaign(specs: list, jobs: int, batches: int) -> float:
    """Wall-clock seconds to run ``specs`` as ``batches`` waves."""
    per = max(1, len(specs) // batches)
    waves = [specs[i:i + per] for i in range(0, len(specs), per)]
    start = time.perf_counter()
    for wave in waves:
        outcomes = run_specs(wave, jobs=jobs)
        assert len(outcomes) == len(wave)
    return time.perf_counter() - start


def measure(specs: list, jobs: int, batches: int, warm: bool,
            reps: int) -> float:
    """Best-of-``reps`` campaign wall clock for one transport."""
    os.environ["REPRO_WARM_POOL"] = "1" if warm else "0"
    try:
        best = float("inf")
        for _ in range(max(1, reps)):
            # The cold path must pay its spawn cost every batch; the
            # warm path pays it once per campaign, so each rep starts
            # from a dead pool to time the whole campaign honestly.
            shutdown_pool()
            best = min(best, run_campaign(specs, jobs, batches))
        return best
    finally:
        shutdown_pool()
        os.environ.pop("REPRO_WARM_POOL", None)


def main() -> int:
    parser = argparse.ArgumentParser(
        description="warm-pool vs cold-spawn campaign wall clock"
    )
    parser.add_argument("--specs", type=int, default=DEFAULT_SPECS)
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS)
    parser.add_argument("--batches", type=int, default=DEFAULT_BATCHES)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny campaign, ordering check only (for noisy CI hosts)",
    )
    args = parser.parse_args()
    if args.smoke:
        args.specs, args.batches, args.reps = 8, 4, 1
    specs = make_specs(args.specs)
    cold = measure(specs, args.jobs, args.batches, warm=False,
                   reps=args.reps)
    warm = measure(specs, args.jobs, args.batches, warm=True,
                   reps=args.reps)
    speedup = cold / warm if warm else float("inf")
    print(f"{args.specs} specs, {args.batches} batches, "
          f"--jobs {args.jobs}:")
    print(f"  cold spawns : {cold:8.2f} s")
    print(f"  warm pool   : {warm:8.2f} s")
    print(f"  speedup     : {speedup:8.2f} x "
          f"(target {WARM_OVER_COLD_TARGET}x)")
    if args.smoke:
        if speedup <= 1.0:
            print("FAIL: warm pool slower than cold spawns")
            return 1
        print("OK: warm pool faster than cold spawns")
        return 0
    if speedup < WARM_OVER_COLD_TARGET:
        print(f"FAIL: {speedup:.2f}x below the "
              f"{WARM_OVER_COLD_TARGET}x campaign target")
        return 1
    print(f"OK: warm pool >= {WARM_OVER_COLD_TARGET}x over cold spawns")
    return 0


if __name__ == "__main__":
    sys.exit(main())
