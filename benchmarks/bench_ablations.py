"""Tuning-space ablations (§6.2's reserved future work).

Each bench sweeps one of the knobs DESIGN.md calls out and checks the
direction the design rationale predicts, on one sensitive victim
(429.mcf) and one insensitive victim (444.namd).

These run shorter scenarios than the figure benches; set
``REPRO_LENGTH`` to lengthen them.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.experiments.ablations import ABLATIONS, AblationRunner
from repro.experiments.campaign import CampaignSettings


@pytest.fixture(scope="module")
def runner() -> AblationRunner:
    settings = CampaignSettings.from_env()
    short = CampaignSettings(
        length=min(settings.length, 0.08), seed=settings.seed
    )
    return AblationRunner(short)


def bench_impact_factor(benchmark, runner):
    table = benchmark.pedantic(
        ABLATIONS["impact-factor"], args=(runner,), rounds=1, iterations=1
    )
    emit(table.render())
    # Less sensitive detection => more batch utilization for mcf.
    utils = table.column("mcf_util")
    assert utils[-1] >= utils[0]
    # namd is insensitive at every setting.
    assert max(table.column("namd_penalty")) < 0.08


def bench_shutter_geometry(benchmark, runner):
    table = benchmark.pedantic(
        ABLATIONS["shutter-geometry"], args=(runner,), rounds=1,
        iterations=1,
    )
    emit(table.render())
    # Longer shutters cost utilization even for the insensitive victim
    # (the shutter phases themselves pause the batch).
    utils = table.column("namd_util")
    assert utils[0] > utils[-1]


def bench_usage_threshold(benchmark, runner):
    table = benchmark.pedantic(
        ABLATIONS["usage-threshold"], args=(runner,), rounds=1,
        iterations=1,
    )
    emit(table.render())
    # A liberal-enough threshold stops seeing contention: utilization
    # recovers, penalty returns.
    utils = table.column("mcf_util")
    assert utils[-1] > utils[0]


def bench_response_length(benchmark, runner):
    table = benchmark.pedantic(
        ABLATIONS["response-length"], args=(runner,), rounds=1,
        iterations=1,
    )
    emit(table.render())
    # For the consistently-contending victim, longer red lights mean
    # the batch spends a larger share of each cycle paused.
    utils = table.column("mcf_util")
    assert utils[-1] < utils[0]
    # The insensitive victim stays protected at every length.
    assert max(table.column("namd_penalty")) < 0.08


def bench_adaptive_response(benchmark, runner):
    table = benchmark.pedantic(
        ABLATIONS["adaptive-response"], args=(runner,), rounds=1,
        iterations=1,
    )
    emit(table.render())
    by_row = dict(zip(table.row_names, table.column("namd_util")))
    # Consistently-negative verdicts let the adaptive variant grow its
    # green light, recovering utilization for the insensitive victim.
    assert by_row["adaptive"] >= by_row["fixed"] - 0.02


def bench_window_size(benchmark, runner):
    table = benchmark.pedantic(
        ABLATIONS["window-size"], args=(runner,), rounds=1, iterations=1
    )
    emit(table.render())
    # The rule-based heuristic keeps protecting mcf at every window.
    assert max(table.column("mcf_penalty")) < 0.20


def bench_shutter_mode(benchmark, runner):
    table = benchmark.pedantic(
        ABLATIONS["shutter-mode"], args=(runner,), rounds=1, iterations=1
    )
    emit(table.render())
    by_row = dict(zip(table.row_names, table.column("mcf_penalty")))
    # The paper-literal spike test under-detects on this substrate
    # (see DESIGN.md): it leaves more of the penalty in place.
    assert by_row["spike-only"] >= by_row["two-sided"] - 0.02


def bench_response_mechanism(benchmark, runner):
    table = benchmark.pedantic(
        ABLATIONS["response-mechanism"], args=(runner,), rounds=1,
        iterations=1,
    )
    emit(table.render())
    by_row_p = dict(zip(table.row_names, table.column("mcf_penalty")))
    # Gentler DVFS scales trade protection for batch progress: the
    # deepest throttle must protect mcf at least as well as the
    # shallowest.
    assert by_row_p["dvfs x0.125"] <= by_row_p["dvfs x0.5"] + 0.03


def bench_probe_overhead(benchmark, runner):
    table = benchmark.pedantic(
        ABLATIONS["probe-overhead"], args=(runner,), rounds=1,
        iterations=1,
    )
    emit(table.render())
    # §3.2's claim: realistic probing (the 20-cycle default) is free.
    by_row = dict(zip(table.row_names, table.column("mcf_penalty")))
    assert by_row["20 cycles/probe"] < 0.02
    # Only an absurd probe cost (10% of the period) registers.
    assert by_row["4000 cycles/probe"] > 0.05


def bench_probe_period(benchmark, runner):
    table = benchmark.pedantic(
        ABLATIONS["probe-period"], args=(runner,), rounds=1,
        iterations=1,
    )
    emit(table.render())
    # The rule-based heuristic protects mcf at every temporal
    # resolution (thresholds rescale with the period automatically).
    assert max(table.column("mcf_penalty")) < 0.20
    assert max(table.column("namd_penalty")) < 0.08


def bench_prefetch(benchmark, runner):
    table = benchmark.pedantic(
        ABLATIONS["prefetch"], args=(runner,), rounds=1, iterations=1
    )
    emit(table.render())
    # CAER keeps protecting under every prefetch configuration.
    assert max(table.column("mcf_penalty")) < 0.25


def bench_writebacks(benchmark, runner):
    table = benchmark.pedantic(
        ABLATIONS["writebacks"], args=(runner,), rounds=1, iterations=1
    )
    emit(table.render())
    # Writeback traffic can only add pressure, and CAER keeps managing
    # the contention either way.
    assert max(table.column("mcf_penalty")) < 0.25
    assert max(table.column("namd_penalty")) < 0.08


def bench_detector(benchmark, runner):
    table = benchmark.pedantic(
        ABLATIONS["detector"], args=(runner,), rounds=1, iterations=1
    )
    emit(table.render())
    by_row = dict(zip(table.row_names, table.column("mcf_penalty")))
    # The offline oracle bounds what online detection can achieve; the
    # rule-based heuristic must come close for the always-hot victim.
    assert by_row["rule-based"] <= by_row["profile-oracle"] + 0.05
    # Both beat the coin-flip baseline on protection.
    assert by_row["rule-based"] < by_row["random"]
