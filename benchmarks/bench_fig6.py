"""Figure 6: cross-core interference penalty under each configuration.

The paper's central result: raw co-location costs ~17% on average;
CAER burst-shutter cuts it to ~6% and rule-based to ~4%, with the
reduction visible on (nearly) every benchmark.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figure6


def bench_figure6(benchmark, campaign):
    table = benchmark.pedantic(
        figure6, args=(campaign,), rounds=1, iterations=1
    )
    emit(table.render())

    raw = table.mean("co-location") - 1.0
    shutter = table.mean("caer_shutter") - 1.0
    rule = table.mean("caer_rule") - 1.0

    # Ordering of the means: raw > shutter > rule (paper: .17/.06/.04).
    assert raw > shutter > rule
    # Bands around the paper's means.
    assert 0.08 <= raw <= 0.30
    assert shutter <= 0.12
    assert rule <= 0.08
    # CAER must cut the mean penalty by at least half.
    assert shutter < 0.6 * raw
    assert rule < 0.5 * raw

    # Per-benchmark: rule-based may never make things *worse* than raw
    # by more than noise.
    for raw_s, rule_s in zip(
        table.column("co-location"), table.column("caer_rule")
    ):
        assert rule_s <= raw_s + 0.05
