"""Extension: scaling to the paper's Figure 4 multi-batch vision.

Not a published figure — the prototype hosts one batch app — but the
architecture section is explicit that several batch layers share the
directives.  This bench quantifies what the quad-core vision buys:
raw interference grows with each added lbm, CAER's group throttle holds
the latency-sensitive penalty down at every count.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.campaign import CampaignSettings
from repro.experiments.scaling import scaling_study


def bench_scaling(benchmark):
    settings = CampaignSettings.from_env()
    short = CampaignSettings(
        length=min(settings.length, 0.08), seed=settings.seed
    )
    table = benchmark.pedantic(
        scaling_study, args=(short,), rounds=1, iterations=1
    )
    emit(table.render())

    raw = table.column("raw_penalty")
    caer = table.column("caer_penalty")
    # Monotone growth of raw interference with contender count.
    assert raw[0] < raw[-1]
    # CAER keeps the penalty below half of raw at every count.
    for r, c in zip(raw, caer):
        assert c < 0.5 * r
