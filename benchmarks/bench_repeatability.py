"""Seed stability of the reproduction's claims.

Re-runs the reference victims under three seeds and asserts the
qualitative story holds in every one: mcf is always heavily penalised
and always protected, namd never is.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.campaign import CampaignSettings
from repro.experiments.repeatability import repeatability_study


def bench_repeatability(benchmark):
    settings = CampaignSettings.from_env()
    short = CampaignSettings(
        length=min(settings.length, 0.06), seed=settings.seed
    )
    table = benchmark.pedantic(
        repeatability_study, args=(short,), rounds=1, iterations=1
    )
    emit(table.render())

    by_name = dict(zip(table.row_names, range(len(table.row_names))))
    mcf, namd = by_name["429.mcf"], by_name["444.namd"]

    # The story is seed-independent: raw penalty band never overlaps.
    assert table.column("raw_mean")[mcf] > 0.2
    assert table.column("raw_mean")[namd] < 0.08
    # CAER protects in every seed (means small, spreads small).
    assert table.column("caer_mean")[mcf] < 0.10
    assert table.column("caer_spread")[mcf] < 0.15
    # The seed-to-seed spread is far smaller than the effect size.
    assert (
        table.column("raw_spread")[mcf]
        < 0.5 * table.column("raw_mean")[mcf]
    )
