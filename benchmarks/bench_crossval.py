"""Cross-validation bench: analytic predictor vs. the simulator.

Predicts the whole of Figure 1 in closed form and checks that the
prediction ranks the benchmarks like the simulation does, keeps the
sensitive/insensitive groups apart, and stays within a factor band on
the mean.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.crossval import analytic_figure1, rank_correlation


def bench_crossval_figure1(benchmark, campaign):
    table = benchmark.pedantic(
        analytic_figure1, args=(campaign,), rounds=1, iterations=1
    )
    emit(table.render())

    predicted = table.column("predicted")
    simulated = table.column("simulated")

    assert rank_correlation(predicted, simulated) > 0.6
    # Mean prediction lands in the same band as the simulation.
    mean_p = sum(predicted) / len(predicted)
    mean_s = sum(simulated) / len(simulated)
    assert abs(mean_p - mean_s) < 0.12
    # Per-benchmark error stays bounded (the dominant-phase
    # approximation is coarse for the phased benchmarks).
    errors = table.column("error")
    assert sum(abs(e) for e in errors) / len(errors) < 0.15
