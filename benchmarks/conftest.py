"""Shared campaign for the figure benches.

All benches draw their simulation runs from one session-scoped
:class:`~repro.experiments.campaign.Campaign`, memoised in memory and on
disk, so figures that share runs (1/2, 6/7/8, 9/10) simulate each run
exactly once per settings change.

Run length follows ``REPRO_LENGTH`` (default 0.2).  The first full
invocation simulates the whole suite (several minutes); subsequent
invocations replay from the cache.

Rendered figures are printed (visible with ``pytest -s``) *and*
appended to ``results/figures.txt`` at the repository root, because
pytest captures per-test stdout by default.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.campaign import Campaign, CampaignSettings

RESULTS_FILE = (
    Path(__file__).resolve().parent.parent / "results" / "figures.txt"
)


@pytest.fixture(scope="session")
def campaign() -> Campaign:
    return Campaign(CampaignSettings.from_env())


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    RESULTS_FILE.parent.mkdir(exist_ok=True)
    RESULTS_FILE.write_text("")


def emit(text: str) -> None:
    """Print a rendered figure and append it to results/figures.txt."""
    print()
    print(text)
    with open(RESULTS_FILE, "a") as handle:
        handle.write(text)
        handle.write("\n")
