"""Figure 1: per-benchmark slowdown next to lbm (raw co-location).

Regenerates the paper's Figure 1 and checks its shape: a suite mean
near 17%, several benchmarks beyond 30%, the paper's sensitive and
insensitive groups separated, and per-benchmark agreement in rank with
the digitised published bars.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figure1
from repro.experiments.paperdata import (
    FIGURE1_SLOWDOWN,
    LEAST_SENSITIVE,
    MOST_SENSITIVE,
)


def _rank_correlation(xs: list[float], ys: list[float]) -> float:
    def ranks(values):
        order = sorted(range(len(values)), key=lambda i: values[i])
        out = [0.0] * len(values)
        for rank, i in enumerate(order):
            out[i] = float(rank)
        return out

    rx, ry = ranks(xs), ranks(ys)
    n = len(xs)
    mean = (n - 1) / 2
    cov = sum((a - mean) * (b - mean) for a, b in zip(rx, ry))
    var = sum((a - mean) ** 2 for a in rx)
    return cov / var if var else 0.0


def bench_figure1(benchmark, campaign):
    table = benchmark.pedantic(
        figure1, args=(campaign,), rounds=1, iterations=1
    )
    emit(table.render())
    emit(table.render_bars("slowdown", baseline=1.0))

    measured = table.column("slowdown")
    names = table.row_names

    # Headline shape: mean penalty ~17%, several bars beyond 30%.
    assert 0.08 <= table.mean("slowdown") - 1.0 <= 0.30
    assert sum(1 for s in measured if s >= 1.25) >= 4

    # Group separation: every "most sensitive" benchmark must be slowed
    # more than every "least sensitive" one.
    by_name = dict(zip(names, measured))
    worst_insensitive = max(by_name[n] for n in LEAST_SENSITIVE)
    best_sensitive = min(by_name[n] for n in MOST_SENSITIVE)
    assert best_sensitive > worst_insensitive

    # Per-benchmark rank agreement with the published bars.
    paper = [FIGURE1_SLOWDOWN[n] for n in names]
    assert _rank_correlation(measured, paper) > 0.7
