"""§6.1's alternative-contender claim.

"We have performed complete runs using other benchmarks such as
libquantum and milc and produced very similar results"; light
adversaries are "more trivial scenarios".  This bench runs a victim
panel against all three heavy contenders plus a light control and
checks both halves.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.campaign import CampaignSettings
from repro.experiments.contenders import (
    contender_study,
    heavy_contender_agreement,
)


def bench_contenders(benchmark):
    settings = CampaignSettings.from_env()
    short = CampaignSettings(
        length=min(settings.length, 0.08), seed=settings.seed
    )
    table = benchmark.pedantic(
        contender_study, args=(short,), rounds=1, iterations=1
    )
    emit(table.render())

    rows = dict(zip(table.row_names, table.column("raw_penalty")))
    managed = dict(zip(table.row_names, table.column("caer_penalty")))

    # Heavy contenders hurt the sensitive victim substantially and
    # agree with each other within a reasonable band.
    for contender in ("470.lbm", "462.libquantum", "433.milc"):
        assert rows[f"429.mcf vs {contender}"] > 0.15
    assert heavy_contender_agreement(table) < 0.25

    # The light adversary is a trivial scenario: little to manage.
    for victim in ("429.mcf", "483.xalancbmk", "473.astar"):
        assert rows[f"{victim} vs 444.namd"] < 0.10

    # CAER removes most of the heavy penalty for every pair where
    # there was a substantial penalty to remove.
    for row, raw_penalty in rows.items():
        if raw_penalty > 0.15:
            assert managed[row] < 0.5 * raw_penalty
