"""Single-run simulator throughput: fast lane vs. generic reference.

Measures raw access throughput (simulated memory accesses per wall
second) of one core driving the scaled-Nehalem hierarchy, with the
hot-path specializations on (``REPRO_FAST_LANE=1``: batched address
generation feeding the inlined L1 MRU check and the LRU-specialized
probe/fill) against the generic reference path (``REPRO_FAST_LANE=0``),
which matches the pre-fast-lane hot path structurally: virtual policy
dispatch and exception-based probing on every access.

Run standalone for the acceptance check (the streaming microbenchmark
must be >= 1.8x)::

    PYTHONPATH=src python benchmarks/bench_simspeed.py
    PYTHONPATH=src python benchmarks/bench_simspeed.py --smoke  # CI

or through pytest (smoke-sized, sanity threshold only)::

    pytest benchmarks/bench_simspeed.py
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running as a script without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import MachineConfig
from repro.workloads import synthetic

#: The acceptance threshold for streaming workloads (fast vs. generic).
STREAMING_TARGET = 1.8

#: Maximum allowed slowdown of a fully traced engine run (ring-buffer
#: sink) over an untraced one.
TRACE_OVERHEAD_TARGET = 0.02

#: name -> (workload factory, counts toward the streaming target)
WORKLOADS = {
    "stream-llc": (
        lambda: synthetic.streamer(lines=70_000, instructions=1e9),
        True,
    ),
    "stream-l2": (
        lambda: synthetic.streamer(lines=512, instructions=1e9),
        True,
    ),
    "pointer-chase": (
        lambda: synthetic.pointer_chaser(lines=70_000, instructions=1e9),
        False,
    ),
}


def measure(
    flag: str, factory, warm: int, timed: int, budget: float = 40_000.0
) -> float:
    """Accesses/second with the fast lane forced to ``flag``.

    The gate is read at object construction, so the chip is built after
    setting the environment; the workload restarts when it finishes so
    the measured stream is steady-state.
    """
    os.environ["REPRO_FAST_LANE"] = flag
    try:
        from repro.arch.chip import MulticoreChip

        chip = MulticoreChip(MachineConfig.scaled_nehalem(), seed=7)
        spec = factory()
        workload = spec.instantiate(seed=3, base=1 << 34)
        core = chip.core(0)
        for _ in range(warm):
            core.run(workload, budget)
            if workload.finished:
                workload = spec.instantiate(seed=3, base=1 << 34)
        start = time.perf_counter()
        accesses_before = core.accesses_issued
        for _ in range(timed):
            core.run(workload, budget)
            if workload.finished:
                workload = spec.instantiate(seed=3, base=1 << 34)
        elapsed = time.perf_counter() - start
        return (core.accesses_issued - accesses_before) / elapsed
    finally:
        os.environ.pop("REPRO_FAST_LANE", None)


def run_suite(warm: int, timed: int) -> list[tuple[str, float, float, bool]]:
    """(name, fast, generic, is_streaming) per workload."""
    rows = []
    for name, (factory, is_streaming) in WORKLOADS.items():
        fast = measure("1", factory, warm, timed)
        generic = measure("0", factory, warm, timed)
        rows.append((name, fast, generic, is_streaming))
    return rows


def render(rows) -> str:
    lines = [
        f"{'workload':<14} {'fast/s':>10} {'generic/s':>10} {'ratio':>7}"
    ]
    for name, fast, generic, _streaming in rows:
        lines.append(
            f"{name:<14} {fast:>10.0f} {generic:>10.0f} "
            f"{fast / generic:>6.2f}x"
        )
    return "\n".join(lines)


def _timed_engine_run(tracer=None, length: float = 0.05) -> float:
    """Seconds for one traced or untraced mcf/shutter co-located run."""
    from repro.caer.runtime import CaerConfig, caer_factory
    from repro.sim import run_colocated
    from repro.workloads import benchmark

    machine = MachineConfig.scaled_nehalem()
    l3 = machine.l3.capacity_lines
    ls = benchmark("429.mcf", l3, length=length)
    batch = benchmark("470.lbm", l3, length=length)
    start = time.perf_counter()
    run_colocated(
        ls, batch, machine,
        caer_factory=caer_factory(CaerConfig.shutter()),
        tracer=tracer,
    )
    return time.perf_counter() - start


def measure_trace_overhead(
    repeats: int = 9, length: float = 0.05
) -> tuple[float, float, float]:
    """(untraced_s, traced_s, overhead_fraction), best-of-``repeats``.

    Tracing emits a handful of events per probe period against ~40 K
    simulated cycles of simulation work, so the true overhead is well
    under the 2% budget — but single-run wall times on a busy host
    jitter by far more than that.  Two noise defences: runs are
    interleaved (untraced, traced, untraced, ...) so scheduler and
    thermal drift hit both sides alike, and the reported overhead is
    the *lower* of two estimators — best-of-N ratio and median paired
    ratio.  Either alone can be inflated a few percent by one noisy
    window; a genuine emission-cost regression inflates both, so the
    gate still catches it.
    """
    from statistics import median

    from repro.obs import RingBufferSink, Tracer

    _timed_engine_run(None, length)  # warm caches and imports
    untraced_times = []
    traced_times = []
    for _ in range(repeats):
        untraced_times.append(_timed_engine_run(None, length))
        traced_times.append(
            _timed_engine_run(Tracer([RingBufferSink(1 << 20)]), length)
        )
    untraced = min(untraced_times)
    traced = min(traced_times)
    min_ratio = traced / untraced - 1.0
    median_pair = median(
        t / u for t, u in zip(traced_times, untraced_times)
    ) - 1.0
    return untraced, traced, min(min_ratio, median_pair)


def bench_simspeed_smoke():
    """Pytest entry: the fast lane must never be slower than generic."""
    rows = run_suite(warm=3, timed=12)
    print(render(rows))
    for name, fast, generic, _streaming in rows:
        assert fast > generic, (
            f"{name}: fast lane ({fast:.0f}/s) slower than generic "
            f"({generic:.0f}/s)"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="simulator hot-path throughput benchmark"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short run: sanity-check fast >= generic, no 1.8x gate",
    )
    parser.add_argument(
        "--trace-overhead",
        action="store_true",
        help=(
            "instead of the throughput suite, measure the tracing "
            f"overhead of a full engine run (must be < "
            f"{TRACE_OVERHEAD_TARGET:.0%})"
        ),
    )
    parser.add_argument("--warm", type=int, default=None,
                        help="warm-up run() calls per measurement")
    parser.add_argument("--timed", type=int, default=None,
                        help="timed run() calls per measurement")
    args = parser.parse_args(argv)

    if args.trace_overhead:
        untraced, traced, overhead = measure_trace_overhead()
        print(
            f"engine run: untraced {untraced * 1000:.1f} ms, traced "
            f"{traced * 1000:.1f} ms, overhead {overhead:+.2%}"
        )
        if overhead >= TRACE_OVERHEAD_TARGET:
            print(
                f"FAIL: tracing overhead {overhead:.2%} >= "
                f"{TRACE_OVERHEAD_TARGET:.0%} budget"
            )
            return 1
        print(f"OK: tracing overhead < {TRACE_OVERHEAD_TARGET:.0%}")
        return 0

    warm = args.warm if args.warm is not None else (3 if args.smoke else 20)
    timed = (
        args.timed if args.timed is not None else (12 if args.smoke else 200)
    )
    rows = run_suite(warm, timed)
    print(render(rows))

    failures = []
    for name, fast, generic, is_streaming in rows:
        ratio = fast / generic
        if args.smoke:
            if ratio <= 1.0:
                failures.append(f"{name}: fast lane slower ({ratio:.2f}x)")
        elif is_streaming and ratio < STREAMING_TARGET:
            failures.append(
                f"{name}: {ratio:.2f}x below the {STREAMING_TARGET}x "
                f"streaming target"
            )
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print(
        "OK"
        if args.smoke
        else f"OK: streaming >= {STREAMING_TARGET}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
