"""Simulator throughput across the four execution tiers.

Measures raw access throughput (simulated memory accesses per wall
second) of one core driving the scaled-Nehalem hierarchy for each
execution tier:

* **generic** (``REPRO_FAST_LANE=0``) — the reference path: virtual
  policy dispatch and exception-based probing on every access;
* **fastlane** (``REPRO_FAST_LANE=1 REPRO_BULK_KERNEL=0``) — the
  first-generation fast lane: batched address generation, inlined
  list-based LRU verbs, scalar hierarchy walks;
* **kernel** (``REPRO_FAST_LANE=1 REPRO_BULK_KERNEL=1
  REPRO_VECTOR_KERNEL=0``) — the bulk kernel: flat-array set storage
  plus batched ``access_many`` walks;
* **vector** (``REPRO_VECTOR_KERNEL=1``) — the tier-4 numpy kernel:
  classify-then-commit batches with vectorized tag probes and bulk
  fills, counter and stat deltas flushed once per batch.

Every tier additionally runs with the tier-5 ownership kernel on
(``REPRO_OWNER_ARRAYS=1``: array-backed L3 owner bitmasks instead of
the dict-of-sets walk) and the batched private fill
(``REPRO_VECTOR_FILLS=1``) — both production defaults.  The
**ownership gates** quantify that layer directly: the current vector
tier against a rebuilt PR-6 "legacy" vector tier
(``REPRO_OWNER_ARRAYS=0 REPRO_VECTOR_FILLS=0``), both at the standard
40 K budget.

All tiers produce bit-identical results (the differential suites in
``tests/arch/test_bulk_kernel.py`` and
``tests/arch/test_owner_store.py`` prove it); only wall-clock differs.

The vector gates compare vector against kernel per workload at that
workload's amortisation budget: ``stream-llc`` at the default 40 K
cycles (large consecutive batches exist there already), and
``pointer-chase`` at a longer budget — a 40 K chase period holds only
a ~200-access batch, which the PR-6 vector tier could not amortise
(its engage threshold is 384 expected accesses, so it stands down to
the bulk kernel there).  The tier-5 build moves the measured engage
break-even down to ~128: batches arrive as array slices from the
pattern layer and the owner bitmask column replaces the per-line
dict walk, so the ~200-access chase batches of a standard budget now
profit from the vector path.  The pointer-chase ownership gate at
40 K measures exactly that regime — the engaged tier-5 vector kernel
against the legacy tier's stand-down floor; the long-budget
vector-vs-kernel chase gate is kept unchanged for continuity.

Run standalone for the acceptance check::

    PYTHONPATH=src python benchmarks/bench_simspeed.py
    PYTHONPATH=src python benchmarks/bench_simspeed.py --smoke  # CI
    PYTHONPATH=src python benchmarks/bench_simspeed.py \
        --json BENCH_simspeed.json --append
    PYTHONPATH=src python benchmarks/bench_simspeed.py --profile

``--append`` accumulates a perf trajectory: the JSON file holds a
``points`` list and every run appends one comparable point (a
schema-1 single-point file is migrated in place).

or through pytest (smoke-sized, sanity ordering only)::

    pytest benchmarks/bench_simspeed.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running as a script without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import MachineConfig
from repro.workloads import synthetic

#: Version of the ``--json`` schema; bump when fields change meaning.
#: Schema 2 turned the file into a trajectory: a ``points`` list of
#: comparable measurement snapshots (schema 1 was one bare snapshot).
SCHEMA_VERSION = 2

#: PR1 gate, kept: fast lane vs. generic on streaming workloads.
STREAMING_TARGET = 1.8

#: Kernel gates, applied to the streaming benchmark (``stream-llc``).
KERNEL_OVER_FASTLANE_TARGET = 1.7
KERNEL_OVER_GENERIC_TARGET = 3.0

#: Vector (tier-4) gates: vector over kernel, per workload, at the
#: workload's amortisation budget (see the module docstring).
VECTOR_OVER_KERNEL_STREAM_TARGET = 3.0
VECTOR_OVER_KERNEL_CHASE_TARGET = 1.5

#: Ownership (tier-5) gates: the current vector tier over the rebuilt
#: PR-6 legacy vector tier (dict ownership walks, scalar private
#: fills), both at the standard 40 K budget.
OWNER_OVER_LEGACY_STREAM_TARGET = 1.3
OWNER_OVER_LEGACY_CHASE_TARGET = 1.2

#: Maximum allowed slowdown of a fully traced engine run (ring-buffer
#: sink) over an untraced one.
TRACE_OVERHEAD_TARGET = 0.02

#: Maximum allowed slowdown of the full live-export stack — span
#: profiling armed, ``/metrics`` endpoint serving, a scraper hitting
#: it — over a bare run of the same workload.
EXPORT_OVERHEAD_TARGET = 0.02

#: Cycle budget of one ``core.run`` call in the main table.
DEFAULT_BUDGET = 40_000.0

#: Budget for the pointer-chase vector gate: long enough that one
#: period batches a few thousand dependent-chain addresses, which is
#: what the vectorized scatter fill needs to amortise its dispatch.
CHASE_GATE_BUDGET = 360_000.0

#: Environment variables a tier tuple maps onto, in order.
_ENV_KEYS = (
    "REPRO_FAST_LANE",
    "REPRO_BULK_KERNEL",
    "REPRO_VECTOR_KERNEL",
    "REPRO_OWNER_ARRAYS",
    "REPRO_VECTOR_FILLS",
)

#: tier -> (REPRO_FAST_LANE, REPRO_BULK_KERNEL, REPRO_VECTOR_KERNEL,
#: REPRO_OWNER_ARRAYS, REPRO_VECTOR_FILLS).  The tier-5 gates stay on
#: everywhere (production defaults); tiers without a flat L3 simply
#: ignore them.
TIERS = {
    "generic": ("0", "0", "0", "1", "1"),
    "fastlane": ("1", "0", "0", "1", "1"),
    "kernel": ("1", "1", "0", "1", "1"),
    "vector": ("1", "1", "1", "1", "1"),
}

#: The PR-6 vector tier, rebuilt: numpy classify/commit but dict
#: ownership walks and scalar private fills.  Comparator for the
#: ownership gates.
LEGACY_VECTOR_ENV = ("1", "1", "1", "0", "0")

#: name -> (factory, streaming gate applies, kernel gate applies,
#: vector gate spec or None, ownership gate spec or None).
#: ``stream-llc`` is *the* streaming benchmark of the acceptance
#: criteria: a cyclic sweep well past the L3, every fourth access a
#: fresh line.  ``stream-l2`` stresses the L3-hit walk (informational
#: for the kernel and vector gates: the walk is a handful of C-level
#: operations either way, so the batched win is structurally smaller
#: there — and it barely touches L3 ownership, so it carries no
#: ownership gate either).
WORKLOADS = {
    "stream-llc": (
        lambda: synthetic.streamer(lines=70_000, instructions=1e9),
        True,
        True,
        {"target": VECTOR_OVER_KERNEL_STREAM_TARGET,
         "budget": DEFAULT_BUDGET},
        {"target": OWNER_OVER_LEGACY_STREAM_TARGET,
         "budget": DEFAULT_BUDGET},
    ),
    "stream-l2": (
        lambda: synthetic.streamer(lines=512, instructions=1e9),
        True,
        False,
        None,
        None,
    ),
    "pointer-chase": (
        lambda: synthetic.pointer_chaser(lines=70_000, instructions=1e9),
        False,
        False,
        {"target": VECTOR_OVER_KERNEL_CHASE_TARGET,
         "budget": CHASE_GATE_BUDGET},
        {"target": OWNER_OVER_LEGACY_CHASE_TARGET,
         "budget": DEFAULT_BUDGET},
    ),
}


def measure(
    tier: str | tuple,
    factory,
    warm: int,
    timed: int,
    budget: float = DEFAULT_BUDGET,
    reps: int = 3,
) -> float:
    """Best-of-``reps`` accesses/second for one execution tier.

    ``tier`` is a name from :data:`TIERS` or a raw five-element env
    tuple (e.g. :data:`LEGACY_VECTOR_ENV`).  The gates are read at
    object construction, so the chip is built after setting the
    environment; the workload restarts when it finishes so the
    measured stream is steady-state.  Best-of-N is the standard
    defence against interpreter and scheduler noise (only slowdowns
    are spurious).
    """
    env = TIERS[tier] if isinstance(tier, str) else tier
    best = 0.0
    for _ in range(max(1, reps)):
        best = max(best, _measure_once(env, factory, warm, timed, budget))
    return best


def _measure_once(
    env: tuple, factory, warm: int, timed: int, budget: float
) -> float:
    """One warm-up + timed measurement of one tier (accesses/second)."""
    for key, value in zip(_ENV_KEYS, env):
        os.environ[key] = value
    try:
        from repro.arch.chip import MulticoreChip

        chip = MulticoreChip(MachineConfig.scaled_nehalem(), seed=7)
        spec = factory()
        workload = spec.instantiate(seed=3, base=1 << 34)
        core = chip.core(0)
        for _ in range(warm):
            core.run(workload, budget)
            if workload.finished:
                workload = spec.instantiate(seed=3, base=1 << 34)
        start = time.perf_counter()
        accesses_before = core.accesses_issued
        for _ in range(timed):
            core.run(workload, budget)
            if workload.finished:
                workload = spec.instantiate(seed=3, base=1 << 34)
        elapsed = time.perf_counter() - start
        return (core.accesses_issued - accesses_before) / elapsed
    finally:
        for key in _ENV_KEYS:
            os.environ.pop(key, None)


def measure_pair(
    tier_a: str | tuple,
    tier_b: str | tuple,
    factory,
    warm: int,
    timed: int,
    budget: float = DEFAULT_BUDGET,
    reps: int = 3,
) -> tuple[float, float]:
    """Best-of-``reps`` for two tiers with their reps interleaved.

    A gate that divides two throughputs is only as trustworthy as the
    measurement *pair*: taking all of tier A's reps, then all of tier
    B's, lets slow scheduler drift land entirely on one side of the
    ratio.  Alternating A/B per rep exposes both tiers to the same
    noise environment, so best-of-N cancels drift instead of baking
    it into the comparison.
    """
    env_a = TIERS[tier_a] if isinstance(tier_a, str) else tier_a
    env_b = TIERS[tier_b] if isinstance(tier_b, str) else tier_b
    best_a = best_b = 0.0
    for _ in range(max(1, reps)):
        best_a = max(
            best_a, _measure_once(env_a, factory, warm, timed, budget)
        )
        best_b = max(
            best_b, _measure_once(env_b, factory, warm, timed, budget)
        )
    return best_a, best_b


def run_suite(
    warm: int, timed: int, reps: int = 3, vector_gates: bool = True
) -> list[dict]:
    """One row per workload: tier throughputs, ratios, gate data.

    ``vector_gates=False`` (smoke runs) skips the separate
    long-budget kernel-vs-vector measurements; the main table still
    carries all four tiers at the default budget.  The ownership
    gates run in both modes: they measure the new and the legacy
    vector tiers as one interleaved pair at the standard budget,
    which is cheap and keeps the ratio drift-free.
    """
    rows = []
    for name, (factory, is_streaming, kernel_gated, vgate,
               ogate) in WORKLOADS.items():
        tiers = {
            tier: measure(tier, factory, warm, timed, reps=reps)
            for tier in TIERS
        }
        row = {
            "workload": name,
            "streaming": is_streaming,
            "kernel_gated": kernel_gated,
            "tiers": tiers,
            "ratios": {
                "fastlane_over_generic":
                    tiers["fastlane"] / tiers["generic"],
                "kernel_over_fastlane":
                    tiers["kernel"] / tiers["fastlane"],
                "kernel_over_generic":
                    tiers["kernel"] / tiers["generic"],
                "vector_over_kernel":
                    tiers["vector"] / tiers["kernel"],
                "vector_over_generic":
                    tiers["vector"] / tiers["generic"],
            },
            "vector_gate": None,
            "ownership_gate": None,
        }
        if ogate is not None:
            # Fresh interleaved pair instead of reusing the main
            # table's vector number: the gate is a ratio, and the two
            # sides must share one noise environment (measure_pair).
            vector, legacy = measure_pair(
                "vector", LEGACY_VECTOR_ENV, factory, warm, timed,
                budget=ogate["budget"], reps=reps,
            )
            row["ownership_gate"] = {
                "budget": ogate["budget"],
                "target": ogate["target"],
                "legacy_vector": legacy,
                "vector": vector,
                "vector_over_legacy": vector / legacy,
            }
        if vgate is not None and vector_gates:
            if vgate["budget"] == DEFAULT_BUDGET:
                kernel, vector = tiers["kernel"], tiers["vector"]
            else:
                # A longer budget multiplies the work per run() call;
                # scale the counts down to keep wall time in check.
                scale = DEFAULT_BUDGET / vgate["budget"]
                gw = max(2, round(warm * scale))
                gt = max(4, round(timed * scale))
                kernel = measure(
                    "kernel", factory, gw, gt,
                    budget=vgate["budget"], reps=reps,
                )
                vector = measure(
                    "vector", factory, gw, gt,
                    budget=vgate["budget"], reps=reps,
                )
            row["vector_gate"] = {
                "budget": vgate["budget"],
                "target": vgate["target"],
                "kernel": kernel,
                "vector": vector,
                "vector_over_kernel": vector / kernel,
            }
        rows.append(row)
    return rows


def render(rows: list[dict]) -> str:
    lines = [
        f"{'workload':<14} {'generic/s':>10} {'fastlane/s':>10} "
        f"{'kernel/s':>10} {'vector/s':>10} "
        f"{'f/g':>6} {'k/f':>6} {'k/g':>6} {'v/k':>6}"
    ]
    for row in rows:
        t, r = row["tiers"], row["ratios"]
        lines.append(
            f"{row['workload']:<14} {t['generic']:>10.0f} "
            f"{t['fastlane']:>10.0f} {t['kernel']:>10.0f} "
            f"{t['vector']:>10.0f} "
            f"{r['fastlane_over_generic']:>5.2f}x "
            f"{r['kernel_over_fastlane']:>5.2f}x "
            f"{r['kernel_over_generic']:>5.2f}x "
            f"{r['vector_over_kernel']:>5.2f}x"
        )
        gate = row.get("vector_gate")
        if gate is not None and gate["budget"] != DEFAULT_BUDGET:
            lines.append(
                f"{'':<14} vector gate @ {gate['budget']:.0f} cycles: "
                f"kernel {gate['kernel']:.0f}/s, vector "
                f"{gate['vector']:.0f}/s "
                f"({gate['vector_over_kernel']:.2f}x, target "
                f"{gate['target']}x)"
            )
        ogate = row.get("ownership_gate")
        if ogate is not None:
            lines.append(
                f"{'':<14} ownership gate @ {ogate['budget']:.0f} "
                f"cycles: legacy vector "
                f"{ogate['legacy_vector']:.0f}/s, vector "
                f"{ogate['vector']:.0f}/s "
                f"({ogate['vector_over_legacy']:.2f}x, target "
                f"{ogate['target']}x)"
            )
    return "\n".join(lines)


def check_gates(rows: list[dict], smoke: bool) -> list[str]:
    """Gate failures for the suite; empty when everything passes."""
    failures = []
    for row in rows:
        name, r = row["workload"], row["ratios"]
        if smoke:
            # CI machines are noisy: sanity ordering only, using the
            # ratios with structural (>= 2x) margin.
            if r["fastlane_over_generic"] <= 1.0:
                failures.append(
                    f"{name}: fastlane slower than generic "
                    f"({r['fastlane_over_generic']:.2f}x)"
                )
            if r["kernel_over_generic"] <= 1.0:
                failures.append(
                    f"{name}: kernel slower than generic "
                    f"({r['kernel_over_generic']:.2f}x)"
                )
            if row["kernel_gated"] and r["kernel_over_fastlane"] <= 1.0:
                failures.append(
                    f"{name}: kernel slower than fastlane "
                    f"({r['kernel_over_fastlane']:.2f}x)"
                )
            if r["vector_over_generic"] <= 1.0:
                failures.append(
                    f"{name}: vector slower than generic "
                    f"({r['vector_over_generic']:.2f}x)"
                )
            # vector-vs-kernel ordering is only structural where the
            # default budget amortises the batches (the kernel-gated
            # streaming benchmark); pointer-chase stands down to
            # parity at 40 K and parity-plus-noise may dip below 1.
            if row["kernel_gated"] and r["vector_over_kernel"] <= 1.0:
                failures.append(
                    f"{name}: vector slower than kernel "
                    f"({r['vector_over_kernel']:.2f}x)"
                )
            ogate = row.get("ownership_gate")
            if ogate is not None and \
                    ogate["vector_over_legacy"] <= 1.0:
                failures.append(
                    f"{name}: vector slower than legacy vector "
                    f"({ogate['vector_over_legacy']:.2f}x)"
                )
            continue
        if row["streaming"] and \
                r["fastlane_over_generic"] < STREAMING_TARGET:
            failures.append(
                f"{name}: fastlane {r['fastlane_over_generic']:.2f}x "
                f"below the {STREAMING_TARGET}x streaming target"
            )
        if row["kernel_gated"]:
            if r["kernel_over_fastlane"] < KERNEL_OVER_FASTLANE_TARGET:
                failures.append(
                    f"{name}: kernel {r['kernel_over_fastlane']:.2f}x "
                    f"below the {KERNEL_OVER_FASTLANE_TARGET}x "
                    f"over-fastlane target"
                )
            if r["kernel_over_generic"] < KERNEL_OVER_GENERIC_TARGET:
                failures.append(
                    f"{name}: kernel {r['kernel_over_generic']:.2f}x "
                    f"below the {KERNEL_OVER_GENERIC_TARGET}x "
                    f"over-generic target"
                )
        gate = row.get("vector_gate")
        if gate is not None and \
                gate["vector_over_kernel"] < gate["target"]:
            failures.append(
                f"{name}: vector {gate['vector_over_kernel']:.2f}x "
                f"below the {gate['target']}x over-kernel target "
                f"(at {gate['budget']:.0f}-cycle budget)"
            )
        ogate = row.get("ownership_gate")
        if ogate is not None and \
                ogate["vector_over_legacy"] < ogate["target"]:
            failures.append(
                f"{name}: vector {ogate['vector_over_legacy']:.2f}x "
                f"below the {ogate['target']}x over-legacy-vector "
                f"target (at {ogate['budget']:.0f}-cycle budget)"
            )
    return failures


def build_point(rows: list[dict], warm: int, timed: int,
                reps: int) -> dict:
    """One comparable trajectory point (see docs/performance.md)."""
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "machine_config": "scaled_nehalem",
            "budget_cycles": int(DEFAULT_BUDGET),
            "warm": warm,
            "timed": timed,
            "reps": reps,
        },
        "targets": {
            "streaming_fastlane_over_generic": STREAMING_TARGET,
            "kernel_over_fastlane": KERNEL_OVER_FASTLANE_TARGET,
            "kernel_over_generic": KERNEL_OVER_GENERIC_TARGET,
            "vector_over_kernel_stream":
                VECTOR_OVER_KERNEL_STREAM_TARGET,
            "vector_over_kernel_chase":
                VECTOR_OVER_KERNEL_CHASE_TARGET,
            "owner_over_legacy_stream":
                OWNER_OVER_LEGACY_STREAM_TARGET,
            "owner_over_legacy_chase":
                OWNER_OVER_LEGACY_CHASE_TARGET,
        },
        # Which REPRO_* kernel gates each measured column ran under —
        # without this, trajectory points from different builds are
        # not comparable (a "vector" column could mean dict or array
        # ownership depending on the era).
        "kernel_gates": {
            name: dict(zip(
                ("fast_lane", "bulk_kernel", "vector_kernel",
                 "owner_arrays", "vector_fills"),
                (value == "1" for value in env),
            ))
            for name, env in (
                list(TIERS.items())
                + [("legacy_vector", LEGACY_VECTOR_ENV)]
            )
        },
        "workloads": {
            row["workload"]: {
                "streaming": row["streaming"],
                "kernel_gated": row["kernel_gated"],
                "tiers": row["tiers"],
                "ratios": row["ratios"],
                "vector_gate": row.get("vector_gate"),
                "ownership_gate": row.get("ownership_gate"),
            }
            for row in rows
        },
    }


def build_report(points: list[dict]) -> dict:
    """The ``--json`` payload: a trajectory of comparable points."""
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "bench_simspeed",
        "points": points,
    }


def migrate_points(report: dict) -> list[dict]:
    """Existing-file contents -> its trajectory points.

    Schema 1 was a single bare snapshot: it becomes point zero of the
    trajectory, its fields carried over untouched (the tier and ratio
    keys it lacks simply stay absent — consumers key off what is
    present).  Schema 2 files return their ``points`` list as is.
    """
    if report.get("schema_version") == SCHEMA_VERSION:
        return list(report["points"])
    point = {
        key: value for key, value in report.items()
        if key not in ("schema_version", "benchmark")
    }
    return [point]


def write_report(path: Path, rows: list[dict], warm: int, timed: int,
                 reps: int, append: bool) -> int:
    """Write (or extend) the trajectory file; return its point count."""
    point = build_point(rows, warm, timed, reps)
    points = [point]
    if append and path.exists():
        points = migrate_points(json.loads(path.read_text())) + [point]
    path.write_text(json.dumps(build_report(points), indent=2) + "\n")
    return len(points)


def profile_streaming_run(top: int = 20) -> None:
    """cProfile one vector-tier streaming run; print top ``top`` by
    cumulative time — the shopping list for future hot-path work."""
    import cProfile
    import pstats

    for key, value in zip(_ENV_KEYS, TIERS["vector"]):
        os.environ[key] = value
    try:
        from repro.arch.chip import MulticoreChip

        chip = MulticoreChip(MachineConfig.scaled_nehalem(), seed=7)
        spec = WORKLOADS["stream-llc"][0]()
        workload = spec.instantiate(seed=3, base=1 << 34)
        core = chip.core(0)
        for _ in range(5):  # warm imports and caches outside the profile
            core.run(workload, 40_000.0)
        profiler = cProfile.Profile()
        profiler.enable()
        for _ in range(50):
            core.run(workload, 40_000.0)
            if workload.finished:
                workload = spec.instantiate(seed=3, base=1 << 34)
        profiler.disable()
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(top)
    finally:
        for key in _ENV_KEYS:
            os.environ.pop(key, None)


def _timed_engine_run(tracer=None, length: float = 0.05) -> float:
    """Seconds for one traced or untraced mcf/shutter co-located run."""
    from repro.caer.runtime import CaerConfig, caer_factory
    from repro.sim import run_colocated
    from repro.workloads import benchmark

    machine = MachineConfig.scaled_nehalem()
    l3 = machine.l3.capacity_lines
    ls = benchmark("429.mcf", l3, length=length)
    batch = benchmark("470.lbm", l3, length=length)
    start = time.perf_counter()
    run_colocated(
        ls, batch, machine,
        caer_factory=caer_factory(CaerConfig.shutter()),
        tracer=tracer,
    )
    return time.perf_counter() - start


def measure_trace_overhead(
    repeats: int = 9, length: float = 0.05
) -> tuple[float, float, float]:
    """(untraced_s, traced_s, overhead_fraction), best-of-``repeats``.

    Tracing emits a handful of events per probe period against ~40 K
    simulated cycles of simulation work, so the true overhead is well
    under the 2% budget — but single-run wall times on a busy host
    jitter by far more than that.  Two noise defences: runs are
    interleaved (untraced, traced, untraced, ...) so scheduler and
    thermal drift hit both sides alike, and the reported overhead is
    the *lower* of two estimators — best-of-N ratio and median paired
    ratio.  Either alone can be inflated a few percent by one noisy
    window; a genuine emission-cost regression inflates both, so the
    gate still catches it.
    """
    from statistics import median

    from repro.obs import RingBufferSink, Tracer

    _timed_engine_run(None, length)  # warm caches and imports
    untraced_times = []
    traced_times = []
    for _ in range(repeats):
        untraced_times.append(_timed_engine_run(None, length))
        traced_times.append(
            _timed_engine_run(Tracer([RingBufferSink(1 << 20)]), length)
        )
    untraced = min(untraced_times)
    traced = min(traced_times)
    min_ratio = traced / untraced - 1.0
    median_pair = median(
        t / u for t, u in zip(traced_times, untraced_times)
    ) - 1.0
    return untraced, traced, min(min_ratio, median_pair)


def _timed_stream_run(
    registry=None, runs: int = 150, budget: float = DEFAULT_BUDGET
) -> float:
    """Seconds for ``runs`` vector-tier stream-llc ``core.run`` calls.

    With ``registry`` the run executes inside ``activate_profiling``,
    so the vector kernel's classify/commit spans are live — the
    per-batch cost the export gate must bound.
    """
    from contextlib import nullcontext

    from repro.arch.chip import MulticoreChip
    from repro.obs import activate_profiling

    chip = MulticoreChip(MachineConfig.scaled_nehalem(), seed=7)
    spec = WORKLOADS["stream-llc"][0]()
    workload = spec.instantiate(seed=3, base=1 << 34)
    core = chip.core(0)
    for _ in range(3):
        core.run(workload, budget)
        if workload.finished:
            workload = spec.instantiate(seed=3, base=1 << 34)
    scope = (
        activate_profiling(registry) if registry is not None
        else nullcontext()
    )
    with scope:
        start = time.perf_counter()
        for _ in range(runs):
            core.run(workload, budget)
            if workload.finished:
                workload = spec.instantiate(seed=3, base=1 << 34)
        return time.perf_counter() - start


def measure_export_overhead(
    repeats: int = 9, runs: int = 150
) -> tuple[float, float, float]:
    """(off_s, on_s, overhead_fraction) for the live-export stack.

    The "on" world is the whole subsystem at once: span profiling
    armed over the vector tier (classify/commit spans firing every
    batch), a ``/metrics`` endpoint serving the registry, and a
    background scraper polling it throughout — the worst realistic
    cost of watching a campaign live.  Noise defences as in
    :func:`measure_trace_overhead`: interleaved runs and the lower of
    the best-of-N and median-paired estimators.
    """
    import threading
    import urllib.request
    from statistics import median

    from repro.obs import MetricsExporter, MetricsRegistry

    for key, value in zip(_ENV_KEYS, TIERS["vector"]):
        os.environ[key] = value
    try:
        _timed_stream_run(runs=runs)  # warm caches and imports
        registry = MetricsRegistry()
        stop = threading.Event()
        with MetricsExporter(registry.snapshot, port=0) as exporter:

            def scraper() -> None:
                while not stop.is_set():
                    try:
                        urllib.request.urlopen(
                            exporter.url, timeout=2
                        ).read()
                    except OSError:
                        pass
                    stop.wait(0.05)

            thread = threading.Thread(target=scraper, daemon=True)
            thread.start()
            try:
                off_times = []
                on_times = []
                for _ in range(repeats):
                    off_times.append(_timed_stream_run(runs=runs))
                    on_times.append(
                        _timed_stream_run(registry, runs=runs)
                    )
            finally:
                stop.set()
                thread.join(timeout=2.0)
        off = min(off_times)
        on = min(on_times)
        min_ratio = on / off - 1.0
        median_pair = median(
            t / u for t, u in zip(on_times, off_times)
        ) - 1.0
        return off, on, min(min_ratio, median_pair)
    finally:
        for key in _ENV_KEYS:
            os.environ.pop(key, None)


def record_export_overhead(path: Path, payload: dict) -> bool:
    """Attach the export-overhead result to the trajectory's last point.

    The measurement annotates the most recent throughput point (it
    describes the same build) rather than appending a tier-less point
    of its own.  Returns ``False`` when the file is absent or empty.
    """
    if not path.exists():
        return False
    report = json.loads(path.read_text())
    points = migrate_points(report)
    if not points:
        return False
    points[-1]["export_overhead"] = payload
    path.write_text(json.dumps(build_report(points), indent=2) + "\n")
    return True


def bench_simspeed_smoke():
    """Pytest entry: tier ordering must hold (no absolute thresholds)."""
    rows = run_suite(warm=3, timed=10, reps=1, vector_gates=False)
    print(render(rows))
    failures = check_gates(rows, smoke=True)
    assert not failures, "; ".join(failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="simulator hot-path throughput benchmark"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short run: tier-ordering sanity only, no absolute gates",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the results as JSON to PATH "
             "(format: docs/performance.md)",
    )
    parser.add_argument(
        "--append",
        action="store_true",
        help="append this run as a new point to the --json trajectory "
             "instead of overwriting it (schema-1 files are migrated)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="instead of the suite, cProfile one vector-tier streaming "
             "run and print the top-20 cumulative functions",
    )
    parser.add_argument(
        "--trace-overhead",
        action="store_true",
        help=(
            "instead of the throughput suite, measure the tracing "
            f"overhead of a full engine run (must be < "
            f"{TRACE_OVERHEAD_TARGET:.0%})"
        ),
    )
    parser.add_argument(
        "--export-overhead",
        action="store_true",
        help=(
            "instead of the throughput suite, measure the live-export "
            "overhead (span profiling + served + scraped /metrics) on "
            f"stream-llc (must be < {EXPORT_OVERHEAD_TARGET:.0%}); "
            "with --json, the result annotates the trajectory's last "
            "point"
        ),
    )
    parser.add_argument("--warm", type=int, default=None,
                        help="warm-up run() calls per measurement")
    parser.add_argument("--timed", type=int, default=None,
                        help="timed run() calls per measurement")
    parser.add_argument("--reps", type=int, default=None,
                        help="repetitions per measurement (best-of)")
    args = parser.parse_args(argv)

    if args.profile:
        profile_streaming_run()
        return 0

    if args.trace_overhead:
        untraced, traced, overhead = measure_trace_overhead()
        print(
            f"engine run: untraced {untraced * 1000:.1f} ms, traced "
            f"{traced * 1000:.1f} ms, overhead {overhead:+.2%}"
        )
        if overhead >= TRACE_OVERHEAD_TARGET:
            print(
                f"FAIL: tracing overhead {overhead:.2%} >= "
                f"{TRACE_OVERHEAD_TARGET:.0%} budget"
            )
            return 1
        print(f"OK: tracing overhead < {TRACE_OVERHEAD_TARGET:.0%}")
        return 0

    if args.export_overhead:
        off, on, overhead = measure_export_overhead()
        print(
            f"stream-llc vector tier: bare {off * 1000:.1f} ms, "
            f"live-export {on * 1000:.1f} ms, overhead {overhead:+.2%}"
        )
        if args.json:
            recorded = record_export_overhead(Path(args.json), {
                "workload": "stream-llc",
                "tier": "vector",
                "bare_seconds": off,
                "exported_seconds": on,
                "overhead_fraction": overhead,
                "target": EXPORT_OVERHEAD_TARGET,
            })
            print(
                f"annotated last point of {args.json}"
                if recorded
                else f"no trajectory at {args.json} to annotate"
            )
        if overhead >= EXPORT_OVERHEAD_TARGET:
            print(
                f"FAIL: live-export overhead {overhead:.2%} >= "
                f"{EXPORT_OVERHEAD_TARGET:.0%} budget"
            )
            return 1
        print(
            f"OK: live-export overhead < {EXPORT_OVERHEAD_TARGET:.0%}"
        )
        return 0

    warm = args.warm if args.warm is not None else (3 if args.smoke else 10)
    timed = (
        args.timed if args.timed is not None else (10 if args.smoke else 40)
    )
    reps = args.reps if args.reps is not None else (1 if args.smoke else 3)
    rows = run_suite(warm, timed, reps, vector_gates=not args.smoke)
    print(render(rows))

    if args.json:
        count = write_report(
            Path(args.json), rows, warm, timed, reps, args.append
        )
        print(f"wrote {args.json} ({count} point(s))")

    failures = check_gates(rows, smoke=args.smoke)
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print(
        "OK"
        if args.smoke
        else (
            f"OK: streaming fastlane >= {STREAMING_TARGET}x, kernel >= "
            f"{KERNEL_OVER_FASTLANE_TARGET}x fastlane / "
            f"{KERNEL_OVER_GENERIC_TARGET}x generic, vector >= "
            f"{VECTOR_OVER_KERNEL_STREAM_TARGET}x kernel on streaming / "
            f"{VECTOR_OVER_KERNEL_CHASE_TARGET}x on pointer-chase, "
            f"ownership >= {OWNER_OVER_LEGACY_STREAM_TARGET}x legacy "
            f"vector on streaming / {OWNER_OVER_LEGACY_CHASE_TARGET}x "
            f"on pointer-chase"
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
