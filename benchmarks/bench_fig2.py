"""Figure 2: whole-run LLC misses, alone vs. with the contender.

The paper's two readings of this figure: (1) co-location increases a
benchmark's cache misses, and (2) the *absolute* miss volume separates
the contention-sensitive benchmarks from the insensitive ones.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figure2
from repro.experiments.paperdata import LEAST_SENSITIVE, MOST_SENSITIVE


def bench_figure2(benchmark, campaign):
    table = benchmark.pedantic(
        figure2, args=(campaign,), rounds=1, iterations=1
    )
    emit(table.render(precision=0))

    by_name_alone = dict(zip(table.row_names, table.column("alone")))
    by_name_with = dict(
        zip(table.row_names, table.column("with_contender"))
    )

    # Sensitive benchmarks miss at least an order of magnitude more
    # than insensitive ones even when running alone.
    sensitive_floor = min(by_name_alone[n] for n in MOST_SENSITIVE)
    insensitive_ceiling = max(by_name_alone[n] for n in LEAST_SENSITIVE)
    assert sensitive_floor > 3 * insensitive_ceiling

    # Co-location must not *reduce* any sensitive benchmark's total
    # misses, and must strictly increase them for the reuse-heavy
    # victims (pure streamers like libquantum execute a fixed number of
    # cold stream misses regardless of the contender, so equality is
    # legitimate for them).
    for name in MOST_SENSITIVE:
        assert by_name_with[name] >= by_name_alone[name]
    for name in ("429.mcf",):
        assert by_name_with[name] > by_name_alone[name]
