"""Figure 8: share of the cross-core interference penalty eliminated.

Another view of Figure 6: higher is better, 1.0 means the penalty was
fully removed.  The paper's rule-based heuristic slightly outperforms
burst-shutter on average.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figure8


def bench_figure8(benchmark, campaign):
    table = benchmark.pedantic(
        figure8, args=(campaign,), rounds=1, iterations=1
    )
    emit(table.render())

    for column in ("caer_shutter", "caer_rule"):
        values = table.column(column)
        assert all(0.0 <= v <= 1.0 for v in values)
        # CAER must eliminate most of the interference on average.
        assert table.mean(column) > 0.5

    # Paper: "rule based ... slightly outperforms our shutter based
    # approach on average".
    assert table.mean("caer_rule") >= table.mean("caer_shutter") - 0.05
