"""The headline numbers of §1/§6.

"Allowing co-location with CAER, as opposed to disallowing co-location,
we are able to increase the utilization of the multicore CPU by 58% on
average.  Meanwhile CAER brings the overhead due to allowing
co-location from 17% down to just 4% on average."
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import headline_numbers


def bench_headline(benchmark, campaign):
    numbers = benchmark.pedantic(
        headline_numbers, args=(campaign,), rounds=1, iterations=1
    )
    emit(numbers.render())

    # Penalty chain: 17% -> 6% (shutter) -> 4% (rule), with bands.
    assert 0.08 <= numbers.raw_penalty <= 0.30
    assert numbers.shutter_penalty < numbers.raw_penalty
    assert numbers.rule_penalty <= numbers.shutter_penalty + 0.02
    assert numbers.rule_penalty <= 0.08

    # Utilization gained in the paper's band (~0.58-0.60).
    assert 0.35 <= numbers.shutter_utilization <= 0.80
    assert 0.35 <= numbers.rule_utilization <= 0.80
