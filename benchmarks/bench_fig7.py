"""Figure 7: utilization gained (higher is better).

The paper reports ~60% (shutter) and 58% (rule-based) mean utilization
gained over disallowing co-location, with insensitive benchmarks
keeping far more batch throughput than sensitive ones.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figure7
from repro.experiments.paperdata import LEAST_SENSITIVE, MOST_SENSITIVE


def bench_figure7(benchmark, campaign):
    table = benchmark.pedantic(
        figure7, args=(campaign,), rounds=1, iterations=1
    )
    emit(table.render())
    emit(table.render_bars("caer_rule"))

    for column in ("caer_shutter", "caer_rule"):
        values = table.column(column)
        assert all(0.0 <= v <= 1.0 for v in values)
        # Paper band: mean utilization gained ~0.58-0.60; allow slack.
        assert 0.35 <= table.mean(column) <= 0.80

        by_name = dict(zip(table.row_names, values))
        mean_sensitive = sum(
            by_name[n] for n in MOST_SENSITIVE
        ) / len(MOST_SENSITIVE)
        mean_insensitive = sum(
            by_name[n] for n in LEAST_SENSITIVE
        ) / len(LEAST_SENSITIVE)
        # Heuristics sacrifice utilization where it matters.
        assert mean_insensitive > mean_sensitive + 0.2
