"""Full-length evaluation on the statistical engine.

The trace engine runs the campaign at reduced lengths for tractability;
the statistical engine is cheap enough to run every benchmark at the
*full* run length (``length=1.0``, ~500-1000 probe periods per run) and
check that the headline story survives: a substantial mean raw penalty,
cut to low single digits by rule-based CAER, with the sensitive and
insensitive groups cleanly separated.
"""

from __future__ import annotations

from conftest import emit

from repro.caer.metrics import slowdown, utilization_gained
from repro.caer.runtime import CaerConfig, caer_factory
from repro.config import MachineConfig
from repro.experiments.paperdata import LEAST_SENSITIVE, MOST_SENSITIVE
from repro.experiments.reporting import FigureTable
from repro.statistical import fast_colocated, fast_solo
from repro.workloads import benchmark, benchmark_names

MACHINE = MachineConfig.scaled_nehalem()
L3 = MACHINE.l3.capacity_lines


def full_length_campaign() -> FigureTable:
    """Every benchmark at length 1.0: raw and rule-based CAER."""
    rows = list(benchmark_names())
    lbm = benchmark("470.lbm", L3, length=1.0)
    table = FigureTable(
        title="Statistical engine: full-length campaign (length=1.0)",
        row_names=rows,
    )
    raw_column: list[float] = []
    caer_column: list[float] = []
    util_column: list[float] = []
    for name in rows:
        spec = benchmark(name, L3, length=1.0)
        solo = fast_solo(spec, MACHINE)
        raw = fast_colocated(spec, lbm, MACHINE)
        managed = fast_colocated(
            spec, lbm, MACHINE,
            caer_factory=caer_factory(CaerConfig.rule_based()),
        )
        raw_column.append(slowdown(raw, solo))
        caer_column.append(slowdown(managed, solo))
        util_column.append(utilization_gained(managed))
    table.add_column("raw", raw_column)
    table.add_column("caer_rule", caer_column)
    table.add_column("caer_util", util_column)
    return table


def bench_statistical_full_length(benchmark):
    table = benchmark.pedantic(
        full_length_campaign, rounds=1, iterations=1
    )
    emit(table.render())

    by_name_raw = dict(zip(table.row_names, table.column("raw")))
    # Headline story at full length (the statistical model estimates
    # penalties conservatively — no inclusion victims, no set
    # conflicts — so bands are looser than the trace engine's).
    assert table.mean("raw") - 1.0 > 0.03
    assert table.mean("caer_rule") < table.mean("raw")
    # Group separation survives in the means.
    sensitive = [by_name_raw[n] for n in MOST_SENSITIVE]
    insensitive = [by_name_raw[n] for n in LEAST_SENSITIVE]
    assert (
        sum(sensitive) / len(sensitive)
        > sum(insensitive) / len(insensitive) + 0.03
    )
    # Utilization is reclaimed where it is safe.
    by_name_util = dict(
        zip(table.row_names, table.column("caer_util"))
    )
    for name in LEAST_SENSITIVE:
        assert by_name_util[name] > 0.5
