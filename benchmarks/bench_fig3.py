"""Figure 3: per-period LLC misses vs. instructions retired.

Renders the two benchmarks' time series (xalancbmk, mcf) and asserts
the paper's reading: a clear *inverse* relationship between a period's
LLC misses and its instruction retirement, plus visible phase structure
in the miss series.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figure3, figure3_correlations


def bench_figure3(benchmark, campaign):
    charts = benchmark.pedantic(
        figure3, args=(campaign,), rounds=1, iterations=1
    )
    for chart in charts.values():
        emit(chart)
    table = figure3_correlations(campaign)
    emit(table.render())

    # Inverse relationship: strongly negative correlation for both.
    for r in table.column("pearson_r"):
        assert r < -0.6

    # Phase structure: the miss series must swing through distinctly
    # heavy and light stretches (max >> min over period buckets).
    for bench_name in ("483.xalancbmk", "429.mcf"):
        series = campaign.solo(bench_name).miss_series
        heavy = sorted(series)[-len(series) // 10]
        light = sorted(series)[len(series) // 10]
        assert heavy > 2 * max(light, 1)
