"""Figure 9: accuracy vs. random, six most sensitive benchmarks.

Equation 2 (A = U_h/U_r - 1) for the six victims Figure 1 ranks most
contention-sensitive.  Negative values mean the heuristic correctly
sacrificed more utilization than a coin-flip baseline; the paper reads
any positive value here as false negatives.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figure9


def bench_figure9(benchmark, campaign):
    table = benchmark.pedantic(
        figure9, args=(campaign,), rounds=1, iterations=1
    )
    emit(table.render())
    emit(table.render_bars("caer_shutter"))

    # Sensitive victims: both heuristics sacrifice more than random.
    # The paper reads an inversion as a false negative; tolerate at
    # most one marginal inversion per heuristic (the shutter's
    # detection is probabilistic on borderline victims).
    for column in ("caer_shutter", "caer_rule"):
        values = table.column(column)
        assert table.mean(column) < -0.1
        assert sum(1 for v in values if v < 0.0) >= len(values) - 1
        assert all(v < 0.15 for v in values)

    # The paper's named magnitudes for mcf: shutter -0.36, rule -0.80.
    by_name = dict(zip(table.row_names, table.column("caer_rule")))
    assert by_name["429.mcf"] < -0.5
    # Rule-based sacrifices more than shutter for sensitive victims.
    assert table.mean("caer_rule") < table.mean("caer_shutter")
